package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)

func sampleDataset() *Dataset {
	d := &Dataset{Name: "pb10-test", Start: t0, End: t0.AddDate(0, 1, 0)}
	d.AddTorrent(&TorrentRecord{
		TorrentID: 0, InfoHash: strings.Repeat("ab", 20),
		Title: "Some.Movie.2010", Category: "Video > Movies",
		SizeBytes: 700 << 20, FileName: "Some.Movie.2010.avi",
		Username: "ultratorrents07", PublisherIP: "11.0.0.7",
		Published: t0.Add(3 * time.Hour), FirstSeenSeeders: 1, FirstSeenPeers: 4,
		Description:  "visit www.ultratorrents.com",
		BundledFiles: []string{"Visit www.ultratorrents.com.txt"},
	})
	d.AddTorrent(&TorrentRecord{
		TorrentID: 1, InfoHash: strings.Repeat("cd", 20),
		Title: "Fake.Release", Category: "Video > Movies",
		Published: t0.Add(5 * time.Hour), FirstSeenSeeders: 1, FirstSeenPeers: 2,
		Username: "xk2j9qpa", Removed: true,
	})
	d.AddObservation(Observation{TorrentID: 0, IP: "11.0.0.7", At: t0.Add(3 * time.Hour), Seeder: true})
	d.AddObservation(Observation{TorrentID: 0, IP: "20.1.2.3", At: t0.Add(4 * time.Hour)})
	d.AddObservation(Observation{TorrentID: 0, IP: "20.1.2.3", At: t0.Add(5 * time.Hour)})
	d.AddObservation(Observation{TorrentID: 1, IP: "20.9.9.9", At: t0.Add(6 * time.Hour)})
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || !got.Start.Equal(d.Start) || !got.End.Equal(d.End) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Torrents) != 2 || got.NumObservations() != 4 {
		t.Fatalf("sizes = %d/%d", len(got.Torrents), got.NumObservations())
	}
	if !reflect.DeepEqual(got.Torrents[0], d.Torrents[0]) {
		t.Fatalf("torrent record mismatch:\n%+v\n%+v", got.Torrents[0], d.Torrents[0])
	}
	if got.Obs.At(3) != d.Obs.At(3) {
		t.Fatalf("observation mismatch: %+v vs %+v", got.Obs.At(3), d.Obs.At(3))
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := sampleDataset()
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DistinctIPs() != d.DistinctIPs() {
		t.Fatal("file round trip changed content")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                             // no header
		"{\"kind\":\"obs\",\"t\":0}\n", // observation before header is fine? No: missing header entirely
		"not json\n",
		"{\"kind\":\"martian\"}\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDistinctIPs(t *testing.T) {
	d := sampleDataset()
	if got := d.DistinctIPs(); got != 3 {
		t.Fatalf("distinct IPs = %d, want 3", got)
	}
}

func TestCounters(t *testing.T) {
	d := sampleDataset()
	if got := d.TorrentsWithUsername(); got != 2 {
		t.Fatalf("with username = %d", got)
	}
	if got := d.TorrentsWithIP(); got != 1 {
		t.Fatalf("with IP = %d", got)
	}
}

func TestObservationsByTorrentSorted(t *testing.T) {
	d := &Dataset{Name: "x", Start: t0, End: t0.Add(time.Hour)}
	d.AddObservation(Observation{TorrentID: 5, IP: "1.1.1.1", At: t0.Add(30 * time.Minute)})
	d.AddObservation(Observation{TorrentID: 5, IP: "1.1.1.2", At: t0.Add(10 * time.Minute)})
	d.AddObservation(Observation{TorrentID: 6, IP: "1.1.1.3", At: t0.Add(20 * time.Minute)})
	byT := d.ObservationsByTorrent()
	if len(byT) != 2 {
		t.Fatalf("groups = %d", len(byT))
	}
	obs5 := byT[5]
	if len(obs5) != 2 || obs5[0].At.After(obs5[1].At) {
		t.Fatalf("torrent 5 observations not sorted: %+v", obs5)
	}
}

func TestByTorrentID(t *testing.T) {
	d := sampleDataset()
	idx := d.ByTorrentID()
	if idx[1] == nil || idx[1].Title != "Fake.Release" {
		t.Fatalf("index = %+v", idx)
	}
}

func TestParseIP(t *testing.T) {
	if _, err := ParseIP("11.0.0.7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseIP("not-an-ip"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmptyDatasetRoundTrip(t *testing.T) {
	d := &Dataset{Name: "empty", Start: t0, End: t0}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Torrents) != 0 || got.NumObservations() != 0 || got.Name != "empty" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestLargeDatasetStreamRoundTrip(t *testing.T) {
	d := &Dataset{Name: "big", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < 500; i++ {
		d.AddTorrent(&TorrentRecord{TorrentID: i, InfoHash: strings.Repeat("00", 20), Published: t0})
		for j := 0; j < 20; j++ {
			d.AddObservation(Observation{TorrentID: i, IP: "10.0.0.1", At: t0})
		}
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Torrents) != 500 || got.NumObservations() != 10000 {
		t.Fatalf("sizes = %d/%d", len(got.Torrents), got.NumObservations())
	}
}

func TestMergeCanonicalOrderAndRemap(t *testing.T) {
	// Two shards whose torrents interleave in publication time and whose
	// local IDs collide.
	a := &Dataset{Name: "shard0", Start: t0, End: t0.AddDate(0, 1, 0)}
	a.AddTorrent(&TorrentRecord{TorrentID: 0, InfoHash: strings.Repeat("dd", 20), Published: t0.Add(4 * time.Hour)})
	a.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0.Add(5 * time.Hour)})
	a.Users = append(a.Users, UserRecord{Username: "zeta"})

	b := &Dataset{Name: "shard1", Start: t0, End: t0.AddDate(0, 1, 0)}
	b.AddTorrent(&TorrentRecord{TorrentID: 0, InfoHash: strings.Repeat("aa", 20), Published: t0.Add(2 * time.Hour)})
	b.AddTorrent(&TorrentRecord{TorrentID: 1, InfoHash: strings.Repeat("bb", 20), Published: t0.Add(6 * time.Hour)})
	b.AddObservation(Observation{TorrentID: 1, IP: "10.0.0.2", At: t0.Add(7 * time.Hour)})
	b.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.3", At: t0.Add(3 * time.Hour)})
	b.Users = append(b.Users, UserRecord{Username: "alpha"})

	m := Merge("merged", a, b)
	if m.Name != "merged" {
		t.Fatalf("name = %q", m.Name)
	}
	wantHashes := []string{strings.Repeat("aa", 20), strings.Repeat("dd", 20), strings.Repeat("bb", 20)}
	for i, want := range wantHashes {
		if m.Torrents[i].InfoHash != want {
			t.Fatalf("torrent %d = %s, want %s", i, m.Torrents[i].InfoHash, want)
		}
		if m.Torrents[i].TorrentID != i {
			t.Fatalf("torrent %d renumbered to %d", i, m.Torrents[i].TorrentID)
		}
	}
	// Observations remapped to the canonical IDs and sorted by time.
	wantObs := []struct {
		id int
		ip string
	}{{0, "10.0.0.3"}, {1, "10.0.0.1"}, {2, "10.0.0.2"}}
	if m.NumObservations() != len(wantObs) {
		t.Fatalf("%d observations, want %d", m.NumObservations(), len(wantObs))
	}
	for i, want := range wantObs {
		got := m.Obs.At(i)
		if got.TorrentID != want.id || got.IP != want.ip {
			t.Fatalf("obs %d = {t%d %s}, want {t%d %s}", i, got.TorrentID, got.IP, want.id, want.ip)
		}
	}
	if m.Users[0].Username != "alpha" || m.Users[1].Username != "zeta" {
		t.Fatalf("users not sorted: %+v", m.Users)
	}
	// Source parts must be untouched (records copied before renumbering).
	if b.Torrents[1].TorrentID != 1 {
		t.Fatalf("merge mutated source part: %d", b.Torrents[1].TorrentID)
	}
}

func TestMergeSplitEqualsWhole(t *testing.T) {
	d := sampleDataset()
	d.Users = append(d.Users,
		UserRecord{Username: "xk2j9qpa"},
		UserRecord{Username: "ultratorrents07", Exists: true})

	// Split the sample by torrent into two shard-shaped parts with local IDs.
	a := &Dataset{Name: d.Name, Start: d.Start, End: d.End}
	b := &Dataset{Name: d.Name, Start: d.Start, End: d.End}
	for _, tr := range d.Torrents {
		cp := *tr
		part := a
		if tr.TorrentID%2 == 1 {
			part = b
		}
		cp.TorrentID = len(part.Torrents)
		for i := 0; i < d.NumObservations(); i++ {
			if o := d.Obs.At(i); o.TorrentID == tr.TorrentID {
				o.TorrentID = cp.TorrentID
				part.AddObservation(o)
			}
		}
		part.AddTorrent(&cp)
		if cp.Username != "" {
			for _, u := range d.Users {
				if u.Username == cp.Username {
					part.Users = append(part.Users, u)
				}
			}
		}
	}

	var whole, split bytes.Buffer
	if err := Merge(d.Name, d).Write(&whole); err != nil {
		t.Fatal(err)
	}
	if err := Merge(d.Name, a, b).Write(&split); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), split.Bytes()) {
		t.Fatalf("split merge differs from whole merge:\n%s\n---\n%s", whole.String(), split.String())
	}
}
