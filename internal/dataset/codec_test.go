package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// legacyWrite is the original reflection-based encoder this package used
// before the columnar store: one json.Encoder line per record. The
// hand-rolled fast paths must reproduce its output byte for byte.
func legacyWrite(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{Kind: "header", Name: d.Name, Start: d.Start, End: d.End}); err != nil {
		t.Fatal(err)
	}
	for _, tr := range d.Torrents {
		if err := enc.Encode(torrentLine{Kind: "torrent", TorrentRecord: tr}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < d.NumObservations(); i++ {
		if err := enc.Encode(obsLine{Kind: "obs", Observation: d.Obs.At(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range d.Users {
		if err := enc.Encode(userLine{Kind: "user", UserRecord: u}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// trickyDataset exercises the encoder edge cases: escape-needing strings
// (including the <,>,& that encoding/json HTML-escapes), fractional-second
// timestamps with trailing-zero trimming, seeder flags on and off, and an
// empty address.
func trickyDataset() *Dataset {
	d := &Dataset{Name: "tricky", Start: t0, End: t0.AddDate(0, 1, 0)}
	d.AddTorrent(&TorrentRecord{TorrentID: 0, InfoHash: strings.Repeat("ef", 20), Published: t0})
	d.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0, Seeder: true})
	d.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0.Add(90*time.Minute + 123456789*time.Nanosecond)})
	d.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0.Add(2*time.Hour + 500*time.Millisecond)})
	d.AddObservation(Observation{TorrentID: 0, IP: `weird "ip" <with> & \escapes\`, At: t0.Add(3 * time.Hour)})
	d.AddObservation(Observation{TorrentID: 0, IP: "snowman-\u2603", At: t0.Add(4 * time.Hour)})
	d.AddObservation(Observation{TorrentID: 0, IP: "", At: t0.Add(5 * time.Hour)})
	d.AddObservation(Observation{TorrentID: 1<<31 - 1, IP: "2001:db8::1", At: t0.Add(6 * time.Hour)})
	return d
}

func TestWriteMatchesLegacyEncoder(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *Dataset
	}{
		{"sample", sampleDataset()},
		{"tricky", trickyDataset()},
		{"empty", &Dataset{Name: "empty", Start: t0, End: t0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var got bytes.Buffer
			if err := tc.d.Write(&got); err != nil {
				t.Fatal(err)
			}
			want := legacyWrite(t, tc.d)
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("fast-path output differs from legacy encoder:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
			}
		})
	}
}

// TestGoldenRoundTrip pins the on-disk format to a checked-in file: the
// sample dataset must serialize to exactly the bytes the pre-columnar
// encoder emitted, and reading those bytes back must reproduce them.
func TestGoldenRoundTrip(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	d := sampleDataset()
	d.Users = append(d.Users,
		UserRecord{Username: "ultratorrents07", Exists: true, MemberSince: t0.AddDate(-2, 0, 0), FirstUpload: t0.AddDate(-1, -11, 0), TotalUploads: 4000},
		UserRecord{Username: "xk2j9qpa"})
	var out bytes.Buffer
	if err := d.Write(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("serialization drifted from golden file:\ngot:\n%s\nwant:\n%s", out.Bytes(), golden)
	}
	back, err := Read(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), golden) {
		t.Fatalf("golden file did not round-trip byte-identically:\ngot:\n%s", again.Bytes())
	}
}

// TestReadFastAndSlowAgree feeds every observation line of a written
// dataset through both decoders and requires identical stores.
func TestReadFastAndSlowAgree(t *testing.T) {
	d := trickyDataset()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObservations() != d.NumObservations() {
		t.Fatalf("lost observations: %d vs %d", got.NumObservations(), d.NumObservations())
	}
	for i := 0; i < d.NumObservations(); i++ {
		want, have := d.Obs.At(i), got.Obs.At(i)
		if want.TorrentID != have.TorrentID || want.IP != have.IP ||
			!want.At.Equal(have.At) || want.Seeder != have.Seeder {
			t.Fatalf("observation %d mismatch: %+v vs %+v", i, want, have)
		}
	}
}

// TestReadRejectsOutOfRangeTorrentIDs: the columnar store keys dense
// int32 sequence numbers, so corrupt IDs must fail the load, not panic
// later index builds or silently truncate.
func TestReadRejectsOutOfRangeTorrentIDs(t *testing.T) {
	header := `{"kind":"header","name":"x","start":"2010-04-06T00:00:00Z","end":"2010-04-07T00:00:00Z"}` + "\n"
	for _, line := range []string{
		`{"kind":"obs","t":-1,"ip":"1.2.3.4","at":"2010-04-06T01:00:00Z"}`,
		`{"kind":"obs","t":4294967296,"ip":"1.2.3.4","at":"2010-04-06T01:00:00Z"}`,
		`{"kind":"obs","ip":"1.2.3.4","t":-7,"at":"2010-04-06T01:00:00Z"}`, // json fallback path
		// Instants the unix-nanosecond column cannot hold must error, not
		// silently overflow UnixNano.
		`{"kind":"obs","t":0,"ip":"1.2.3.4","at":"2500-01-01T00:00:00Z"}`,
		`{"kind":"obs","t":0,"ip":"1.2.3.4","at":"1500-01-01T00:00:00Z"}`,
	} {
		if _, err := Read(strings.NewReader(header + line + "\n")); err == nil {
			t.Errorf("accepted corrupt observation line %s", line)
		}
	}
}

// FuzzObsLineDecode proves the hand-rolled observation-line decoder is a
// strict subset of encoding/json: whenever the fast path accepts a line,
// the reflection decoder must accept it too and produce the same record,
// and re-encoding the parsed fields must reproduce the line.
func FuzzObsLineDecode(f *testing.F) {
	f.Add([]byte(`{"kind":"obs","t":0,"ip":"11.0.0.7","at":"2010-04-06T03:00:00Z","s":true}`))
	f.Add([]byte(`{"kind":"obs","t":7,"ip":"20.1.2.3","at":"2010-04-06T04:00:00Z"}`))
	f.Add([]byte(`{"kind":"obs","t":7,"ip":"20.1.2.3","at":"2010-04-06T04:00:00.123456789Z"}`))
	f.Add([]byte(`{"kind":"obs","t":7,"ip":"20.1.2.3","at":"2010-04-06T04:00:00.5Z","s":false}`))
	f.Add([]byte(`{"kind":"obs","t":-3,"ip":"","at":"1970-01-01T00:00:00Z"}`))
	f.Add([]byte(`{"kind":"obs","t":2147483647,"ip":"2001:db8::1","at":"2262-04-11T23:47:16Z"}`))
	f.Add([]byte(`{"kind":"obs","t":1,"ip":"a\u0041b","at":"2010-04-06T03:00:00Z"}`))
	f.Add([]byte(`{"kind":"obs","t":1,"ip":"x","at":"2010-04-06T03:00:00+02:00"}`))
	f.Add([]byte(`{"kind":"obs","t":1,"ip":"x","at":"2010-04-06T03:00:00,5Z"}`))
	f.Add([]byte(`{"t":1,"kind":"obs","ip":"x","at":"2010-04-06T03:00:00Z"}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		tid, ip, atNs, seeder, ok := parseObsLine(line)
		if !ok {
			return
		}
		var o obsLine
		if err := json.Unmarshal(line, &o); err != nil {
			t.Fatalf("fast path accepted what encoding/json rejects: %q (%v)", line, err)
		}
		if o.Kind != "obs" {
			t.Fatalf("fast path accepted non-obs line %q", line)
		}
		if int64(o.TorrentID) != tid || o.IP != string(ip) || o.At.UnixNano() != atNs || o.Seeder != seeder {
			t.Fatalf("decoders disagree on %q:\nfast: t=%d ip=%q at=%d s=%v\njson: %+v",
				line, tid, ip, atNs, seeder, o)
		}
		if tid >= -(1<<31) && tid < 1<<31 && !seederFalseEncoded(line) {
			enc, err := appendObsLine(nil, int32(tid), string(ip), atNs, seeder)
			if err != nil {
				t.Fatalf("re-encode failed for %q: %v", line, err)
			}
			if string(enc) != string(line)+"\n" {
				t.Fatalf("re-encode differs:\nin:  %q\nout: %q", line, enc)
			}
		}
	})
}

// seederFalseEncoded reports a line carrying an explicit "s":false — valid
// input that the encoder (omitempty) never produces, so re-encoding it is
// legitimately shorter.
func seederFalseEncoded(line []byte) bool {
	return bytes.Contains(line, []byte(`,"s":false`))
}
