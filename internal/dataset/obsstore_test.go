package dataset

import (
	"net/netip"
	"testing"
	"time"
)

func TestIPTableInternSharing(t *testing.T) {
	var tab IPTable
	a := tab.InternString("10.0.0.1")
	b := tab.InternAddr(netip.MustParseAddr("10.0.0.1"))
	if a != b {
		t.Fatalf("string and addr interning diverged: %d vs %d", a, b)
	}
	c := tab.InternString("10.0.0.2")
	if c == a {
		t.Fatal("distinct addresses shared an index")
	}
	if tab.Len() != 2 {
		t.Fatalf("table size = %d, want 2", tab.Len())
	}
	if tab.String(a) != "10.0.0.1" || !tab.Addr(a).IsValid() {
		t.Fatalf("entry %d = %q/%v", a, tab.String(a), tab.Addr(a))
	}
	// Invalid addresses intern too (string identity), with a zero Addr.
	d := tab.InternString("not-an-ip")
	if tab.Addr(d).IsValid() {
		t.Fatal("garbage string produced a valid Addr")
	}
	if i, ok := tab.Lookup("10.0.0.2"); !ok || i != c {
		t.Fatalf("Lookup = %d,%v", i, ok)
	}
	if _, ok := tab.Lookup("10.0.0.3"); ok {
		t.Fatal("Lookup invented an entry")
	}
}

func TestObsStoreSeederBitsetAcrossWords(t *testing.T) {
	var s ObsStore
	for i := 0; i < 200; i++ {
		s.Append(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0, Seeder: i%3 == 0})
	}
	for i := 0; i < 200; i++ {
		if s.Seeder(i) != (i%3 == 0) {
			t.Fatalf("seeder bit %d flipped", i)
		}
	}
	if s.IPs().Len() != 1 {
		t.Fatalf("interning failed: %d entries", s.IPs().Len())
	}
}

func TestObsIndexRepairsUnsortedSpans(t *testing.T) {
	var s ObsStore
	// Torrent 1's observations arrive out of time order.
	s.Append(Observation{TorrentID: 1, IP: "a", At: t0.Add(3 * time.Hour)})
	s.Append(Observation{TorrentID: 0, IP: "b", At: t0})
	s.Append(Observation{TorrentID: 1, IP: "c", At: t0.Add(1 * time.Hour)})
	s.Append(Observation{TorrentID: 1, IP: "d", At: t0.Add(2 * time.Hour)})
	ix := s.Index()
	span := ix.Span(1)
	if len(span) != 3 {
		t.Fatalf("span = %v", span)
	}
	for i := 1; i < len(span); i++ {
		if s.UnixNano(int(span[i])) < s.UnixNano(int(span[i-1])) {
			t.Fatalf("span not time-sorted: %v", span)
		}
	}
	if got := ix.Span(99); len(got) != 0 {
		t.Fatalf("unknown torrent span = %v", got)
	}
	// The cached index survives until the store grows.
	if s.Index() != ix {
		t.Fatal("index rebuilt without appends")
	}
	s.Append(Observation{TorrentID: 0, IP: "e", At: t0})
	if s.Index() == ix {
		t.Fatal("index not rebuilt after append")
	}
}

func TestDistinctIPCountsMatchesNaive(t *testing.T) {
	var s ObsStore
	obs := []Observation{
		{TorrentID: 0, IP: "x", At: t0},
		{TorrentID: 0, IP: "x", At: t0.Add(time.Minute)},
		{TorrentID: 0, IP: "y", At: t0.Add(2 * time.Minute)},
		{TorrentID: 2, IP: "x", At: t0},
		{TorrentID: 2, IP: "z", At: t0},
		{TorrentID: 2, IP: "z", At: t0.Add(time.Hour)},
	}
	naive := map[int]map[string]bool{}
	for _, o := range obs {
		s.Append(o)
		if naive[o.TorrentID] == nil {
			naive[o.TorrentID] = map[string]bool{}
		}
		naive[o.TorrentID][o.IP] = true
	}
	counts := s.DistinctIPCounts()
	if len(counts) != 3 {
		t.Fatalf("slots = %d, want 3 (torrent 1 empty)", len(counts))
	}
	for tid, want := range map[int]int{0: 2, 1: 0, 2: 2} {
		if counts[tid] != want {
			t.Fatalf("torrent %d distinct = %d, want %d (naive %d)",
				tid, counts[tid], want, len(naive[tid]))
		}
	}
}

// TestMergeCountsDroppedObservations is the silent-data-loss guard: an
// observation whose TorrentID matches no torrent record must be counted,
// not silently discarded.
func TestMergeCountsDroppedObservations(t *testing.T) {
	good := &Dataset{Name: "good", Start: t0, End: t0.Add(time.Hour)}
	good.AddTorrent(&TorrentRecord{TorrentID: 0, InfoHash: "aa", Published: t0})
	good.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.1", At: t0})

	buggy := &Dataset{Name: "buggy", Start: t0, End: t0.Add(time.Hour)}
	buggy.AddTorrent(&TorrentRecord{TorrentID: 0, InfoHash: "bb", Published: t0})
	buggy.AddObservation(Observation{TorrentID: 0, IP: "10.0.0.2", At: t0})
	buggy.AddObservation(Observation{TorrentID: 7, IP: "10.0.0.3", At: t0}) // no torrent 7
	buggy.AddObservation(Observation{TorrentID: 9, IP: "10.0.0.4", At: t0}) // no torrent 9

	m := Merge("m", good, buggy)
	if m.DroppedObservations != 2 {
		t.Fatalf("DroppedObservations = %d, want 2", m.DroppedObservations)
	}
	if m.NumObservations() != 2 {
		t.Fatalf("kept %d observations, want 2", m.NumObservations())
	}
	// Addresses seen only in dropped observations must not pollute the
	// merged intern table (DistinctIPs counts surviving sightings only).
	if m.DistinctIPs() != 2 {
		t.Fatalf("DistinctIPs = %d, want 2 (dropped IPs leaked into the table)", m.DistinctIPs())
	}
	clean := Merge("m2", good)
	if clean.DroppedObservations != 0 {
		t.Fatalf("clean merge reported %d dropped", clean.DroppedObservations)
	}
}
