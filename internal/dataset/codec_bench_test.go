package dataset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"
)

// benchDataset builds a crawl-shaped dataset: obsPerTorrent observations
// across torrents, ~1/8 distinct IPs, timestamps marching forward.
func benchDataset(torrents, obsPerTorrent int) *Dataset {
	d := &Dataset{Name: "bench", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < torrents; i++ {
		d.AddTorrent(&TorrentRecord{TorrentID: i, InfoHash: fmt.Sprintf("%040x", i), Published: t0})
		for j := 0; j < obsPerTorrent; j++ {
			k := (i*131 + j*17) % 6000 // ~6k distinct addresses overall
			d.AddObservation(Observation{
				TorrentID: i,
				IP:        fmt.Sprintf("10.%d.%d.%d", k/62500, k/250%250, k%250),
				At:        t0.Add(time.Duration(j) * 11 * time.Minute),
				Seeder:    j == 0,
			})
		}
	}
	return d
}

// BenchmarkObsWrite measures the hand-rolled observation-line encoder.
func BenchmarkObsWrite(b *testing.B) {
	d := benchDataset(100, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsWriteLegacy is the pre-columnar json.Encoder path, for
// comparison.
func BenchmarkObsWriteLegacy(b *testing.B) {
	d := benchDataset(100, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw := bufio.NewWriterSize(io.Discard, 1<<16)
		enc := json.NewEncoder(bw)
		if err := enc.Encode(headerLine{Kind: "header", Name: d.Name, Start: d.Start, End: d.End}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < d.NumObservations(); j++ {
			if err := enc.Encode(obsLine{Kind: "obs", Observation: d.Obs.At(j)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsRead measures the fast-path observation-line decoder.
func BenchmarkObsRead(b *testing.B) {
	d := benchDataset(100, 500)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeShards measures the canonical merge of four shard stores.
func BenchmarkMergeShards(b *testing.B) {
	parts := make([]*Dataset, 4)
	for p := range parts {
		parts[p] = benchDataset(50, 500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Merge("m", parts...)
		if m.NumObservations() == 0 {
			b.Fatal("empty merge")
		}
	}
}
