package geoip

import (
	"fmt"
	"net/netip"
)

// Registry names for the providers the paper's Table 2 reports. Keeping them
// as constants lets the analysis and the population model agree on spelling.
const (
	OVH        = "OVH"
	Comcast    = "Comcast"
	Keyweb     = "Keyweb"
	RoadRunner = "Road Runner"
	NetDirect  = "NetDirect"
	Virgin     = "Virgin Media"
	NOC        = "NetWork Operations Center"
	SBC        = "SBC"
	ComcorTV   = "Comcor-TV"
	TelecomIT  = "Telecom Italia"
	SoftLayer  = "SoftLayer Tech."
	FDCServers = "FDCservers"
	OCN        = "Open Computer Network"
	Tzulo      = "tzulo"
	Cosema     = "Cosema"
	Telefonica = "Telefonica"
	Jazztel    = "Jazz Telecom."
	FourRWEB   = "4RWEB"
	MTT        = "MTT Network"
	Verizon    = "Verizon"
	RomaniaDS  = "Romania DS"
	NIB        = "NIB"
)

// GenericISPName returns the name of the i-th long-tail commercial ISP.
func GenericISPName(i int) string { return fmt.Sprintf("Residential-%02d", i) }

// NumGenericISPs is how many long-tail commercial ISPs DefaultDB registers.
const NumGenericISPs = 40

var usCities = []Location{
	{"US", "New York"}, {"US", "Chicago"}, {"US", "Denver"}, {"US", "Seattle"},
	{"US", "Atlanta"}, {"US", "Houston"}, {"US", "Boston"}, {"US", "Miami"},
	{"US", "Phoenix"}, {"US", "Portland"}, {"US", "Dallas"}, {"US", "Detroit"},
	{"US", "San Jose"}, {"US", "Columbus"}, {"US", "Austin"}, {"US", "Memphis"},
	{"US", "Baltimore"}, {"US", "Louisville"}, {"US", "Milwaukee"}, {"US", "Tucson"},
	{"US", "Fresno"}, {"US", "Sacramento"}, {"US", "Kansas City"}, {"US", "Mesa"},
	{"US", "Omaha"}, {"US", "Raleigh"}, {"US", "Oakland"}, {"US", "Tulsa"},
	{"US", "Cleveland"}, {"US", "Wichita"}, {"US", "Arlington"}, {"US", "Tampa"},
}

// DefaultDB builds the registry used by the standard scenarios. Hosting
// providers get few /16 prefixes concentrated in one or two data-centre
// locations; commercial ISPs get many prefixes across many cities. This is
// what lets the analysis reproduce Table 3's contrast (OVH: few prefixes,
// few locations; Comcast: hundreds of prefixes and cities).
func DefaultDB() (*DB, error) {
	b := NewBuilder(netip.MustParseAddr("11.0.0.0"))

	// --- Hosting providers ---------------------------------------------
	// OVH: the paper observes 5-7 distinct /16s and 2-4 European locations.
	b.AddISP(OVH, Hosting, 7, []Location{
		{"FR", "Roubaix"}, {"FR", "Paris"}, {"ES", "Madrid"}, {"PL", "Warsaw"},
	})
	b.AddISP(Keyweb, Hosting, 3, []Location{{"DE", "Berlin"}})
	b.AddISP(NetDirect, Hosting, 2, []Location{{"DE", "Frankfurt"}})
	b.AddISP(NOC, Hosting, 3, []Location{{"US", "Scranton"}})
	b.AddISP(SoftLayer, Hosting, 4, []Location{{"US", "Dallas"}, {"US", "Seattle"}})
	b.AddISP(FDCServers, Hosting, 3, []Location{{"US", "Chicago"}})
	b.AddISP(Tzulo, Hosting, 2, []Location{{"US", "Chicago"}, {"US", "Los Angeles"}})
	b.AddISP(FourRWEB, Hosting, 2, []Location{{"RU", "Moscow"}})

	// --- Commercial ISPs -------------------------------------------------
	// Comcast: the paper sees publishers scattered over 139-269 /16s and
	// 129-400 locations. Give it a large, city-diverse footprint.
	b.AddISP(Comcast, Commercial, 320, usCities)
	b.AddISP(RoadRunner, Commercial, 160, usCities[8:24])
	b.AddISP(SBC, Commercial, 140, usCities[4:20])
	b.AddISP(Verizon, Commercial, 150, usCities[:16])
	b.AddISP(Virgin, Commercial, 80, []Location{
		{"GB", "London"}, {"GB", "Manchester"}, {"GB", "Birmingham"},
		{"GB", "Leeds"}, {"GB", "Glasgow"}, {"GB", "Liverpool"},
	})
	b.AddISP(ComcorTV, Commercial, 40, []Location{
		{"RU", "Moscow"}, {"RU", "Saint Petersburg"}, {"RU", "Novosibirsk"},
	})
	b.AddISP(TelecomIT, Commercial, 90, []Location{
		{"IT", "Rome"}, {"IT", "Milan"}, {"IT", "Naples"}, {"IT", "Turin"},
	})
	b.AddISP(OCN, Commercial, 90, []Location{
		{"JP", "Tokyo"}, {"JP", "Osaka"}, {"JP", "Nagoya"},
	})
	b.AddISP(Cosema, Commercial, 30, []Location{{"SE", "Stockholm"}, {"SE", "Gothenburg"}})
	b.AddISP(Telefonica, Commercial, 110, []Location{
		{"ES", "Madrid"}, {"ES", "Barcelona"}, {"ES", "Valencia"}, {"ES", "Seville"},
	})
	b.AddISP(Jazztel, Commercial, 60, []Location{
		{"ES", "Madrid"}, {"ES", "Barcelona"}, {"ES", "Malaga"},
	})
	b.AddISP(MTT, Commercial, 30, []Location{{"RU", "Moscow"}, {"BY", "Minsk"}})
	b.AddISP(RomaniaDS, Commercial, 40, []Location{
		{"RO", "Bucharest"}, {"RO", "Cluj-Napoca"},
	})
	b.AddISP(NIB, Commercial, 30, []Location{{"AU", "Sydney"}, {"AU", "Melbourne"}})

	// Long tail of residential providers for the 97% of ordinary users.
	tailCities := []Location{
		{"DE", "Munich"}, {"FR", "Lyon"}, {"NL", "Amsterdam"}, {"BR", "Sao Paulo"},
		{"CA", "Toronto"}, {"MX", "Mexico City"}, {"AR", "Buenos Aires"},
		{"IN", "Mumbai"}, {"PL", "Krakow"}, {"GR", "Athens"}, {"PT", "Lisbon"},
		{"TR", "Istanbul"}, {"KR", "Seoul"}, {"ZA", "Johannesburg"},
	}
	for i := 0; i < NumGenericISPs; i++ {
		locs := []Location{
			tailCities[i%len(tailCities)],
			tailCities[(i+3)%len(tailCities)],
			tailCities[(i+7)%len(tailCities)],
		}
		b.AddISP(GenericISPName(i), Commercial, 24, locs)
	}

	return b.Build()
}

// HostingProviders lists the named hosting providers in DefaultDB.
func HostingProviders() []string {
	return []string{OVH, Keyweb, NetDirect, NOC, SoftLayer, FDCServers, Tzulo, FourRWEB}
}

// FakeHostingProviders lists the three hosting providers the paper observes
// fake publishers operating from (Section 3.3).
func FakeHostingProviders() []string {
	return []string{Tzulo, FDCServers, FourRWEB}
}
