// Package geoip is the reproduction's stand-in for the MaxMind GeoIP
// database the paper uses to map peer and publisher IP addresses to their
// ISP and geographical location.
//
// The database maps synthetic IPv4 space to a registry of named ISPs. Every
// ISP owns a set of /16 prefixes; each prefix is pinned to one (country,
// city) pair. This reproduces the structure the paper leans on in Table 3:
// hosting providers concentrate their servers in a handful of prefixes and
// data-center locations, while commercial ISPs scatter subscribers across
// many prefixes and many cities.
package geoip

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"btpub/internal/rng"
)

// ISPType distinguishes the two classes the paper contrasts.
type ISPType int

const (
	// Commercial is a residential/business access provider (e.g. Comcast).
	Commercial ISPType = iota
	// Hosting is a server-rental provider (e.g. OVH).
	Hosting
)

// String implements fmt.Stringer.
func (t ISPType) String() string {
	switch t {
	case Commercial:
		return "Commercial ISP"
	case Hosting:
		return "Hosting Provider"
	default:
		return fmt.Sprintf("ISPType(%d)", int(t))
	}
}

// Prefix is one /16 block owned by an ISP, pinned to a location.
type Prefix struct {
	Base    uint32 // network address of the /16 (low 16 bits zero)
	Country string
	City    string
}

// ISP describes one provider in the registry.
type ISP struct {
	Name     string
	Type     ISPType
	Prefixes []Prefix
}

// Record is a lookup result.
type Record struct {
	ISP     string
	Type    ISPType
	Country string
	City    string
}

// DB maps IPv4 addresses to Records.
type DB struct {
	isps     []*ISP
	byName   map[string]*ISP
	prefixes []dbPrefix // sorted by Base
}

type dbPrefix struct {
	base uint32
	rec  Record
}

// Builder allocates address space to ISPs and produces an immutable DB.
type Builder struct {
	next   uint32 // next free /16 network address
	isps   []*ISP
	byName map[string]*ISP
	err    error
}

// NewBuilder returns a Builder allocating /16 blocks upward from start
// (e.g. netip.MustParseAddr("11.0.0.0")). The low 16 bits of start must be
// zero.
func NewBuilder(start netip.Addr) *Builder {
	b := &Builder{byName: map[string]*ISP{}}
	if !start.Is4() {
		b.err = errors.New("geoip: builder start must be IPv4")
		return b
	}
	v := ipToUint(start)
	if v&0xFFFF != 0 {
		b.err = fmt.Errorf("geoip: builder start %v not /16 aligned", start)
		return b
	}
	b.next = v
	return b
}

// Location is a (country, city) pair for prefix assignment.
type Location struct {
	Country string
	City    string
}

// AddISP registers an ISP owning numPrefixes /16 blocks spread over the
// provided locations round-robin. Adding the same name twice is an error.
func (b *Builder) AddISP(name string, typ ISPType, numPrefixes int, locations []Location) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" || numPrefixes <= 0 || len(locations) == 0 {
		b.err = fmt.Errorf("geoip: bad AddISP(%q, %d prefixes, %d locations)", name, numPrefixes, len(locations))
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.err = fmt.Errorf("geoip: duplicate ISP %q", name)
		return b
	}
	isp := &ISP{Name: name, Type: typ}
	for i := 0; i < numPrefixes; i++ {
		loc := locations[i%len(locations)]
		isp.Prefixes = append(isp.Prefixes, Prefix{Base: b.next, Country: loc.Country, City: loc.City})
		b.next += 1 << 16
		if b.next == 0 {
			b.err = errors.New("geoip: address space exhausted")
			return b
		}
	}
	b.isps = append(b.isps, isp)
	b.byName[name] = isp
	return b
}

// Build finalises the database.
func (b *Builder) Build() (*DB, error) {
	if b.err != nil {
		return nil, b.err
	}
	db := &DB{isps: b.isps, byName: b.byName}
	for _, isp := range b.isps {
		for _, p := range isp.Prefixes {
			db.prefixes = append(db.prefixes, dbPrefix{
				base: p.Base,
				rec:  Record{ISP: isp.Name, Type: isp.Type, Country: p.Country, City: p.City},
			})
		}
	}
	sort.Slice(db.prefixes, func(i, j int) bool { return db.prefixes[i].base < db.prefixes[j].base })
	for i := 1; i < len(db.prefixes); i++ {
		if db.prefixes[i].base == db.prefixes[i-1].base {
			return nil, fmt.Errorf("geoip: overlapping prefixes at %s", uintToIP(db.prefixes[i].base))
		}
	}
	return db, nil
}

// ErrNotFound reports an address outside all registered prefixes.
var ErrNotFound = errors.New("geoip: address not in database")

// Lookup resolves an address to its Record.
func (db *DB) Lookup(addr netip.Addr) (Record, error) {
	if !addr.Is4() {
		return Record{}, fmt.Errorf("geoip: %v is not IPv4", addr)
	}
	v := ipToUint(addr)
	base := v &^ 0xFFFF
	i := sort.Search(len(db.prefixes), func(i int) bool { return db.prefixes[i].base >= base })
	if i < len(db.prefixes) && db.prefixes[i].base == base {
		return db.prefixes[i].rec, nil
	}
	return Record{}, ErrNotFound
}

// ISPNames lists all registered ISPs in registration order.
func (db *DB) ISPNames() []string {
	out := make([]string, len(db.isps))
	for i, isp := range db.isps {
		out[i] = isp.Name
	}
	return out
}

// ISPByName returns the ISP record, or nil.
func (db *DB) ISPByName(name string) *ISP { return db.byName[name] }

// RandomIP draws an address uniformly from one of the named ISP's prefixes.
// When concentrate is in (0,1], draws are biased so that roughly that
// fraction of addresses come from the ISP's first prefix — used to model
// hosting providers racking servers in one data centre.
func (db *DB) RandomIP(s *rng.Stream, ispName string, concentrate float64) (netip.Addr, error) {
	isp := db.byName[ispName]
	if isp == nil {
		return netip.Addr{}, fmt.Errorf("geoip: unknown ISP %q", ispName)
	}
	var p Prefix
	if concentrate > 0 && len(isp.Prefixes) > 1 && s.Bool(concentrate) {
		p = isp.Prefixes[0]
	} else {
		p = isp.Prefixes[s.IntN(len(isp.Prefixes))]
	}
	// Avoid .0.0 (network) to keep addresses host-like.
	host := uint32(s.IntN(1<<16-2)) + 1
	return uintToIP(p.Base | host), nil
}

// Slash16 returns the /16 prefix identity of an address, used by the
// analysis when reproducing Table 3 (distinct /16 prefixes per ISP).
func Slash16(addr netip.Addr) (uint32, error) {
	if !addr.Is4() {
		return 0, fmt.Errorf("geoip: %v is not IPv4", addr)
	}
	return ipToUint(addr) &^ 0xFFFF, nil
}

func ipToUint(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func uintToIP(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
