package geoip

import (
	"net/netip"
	"testing"
	"testing/quick"

	"btpub/internal/rng"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("HostCo", Hosting, 2, []Location{{"FR", "Roubaix"}}).
		AddISP("CableCo", Commercial, 4, []Location{{"US", "Denver"}, {"US", "Miami"}}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return db
}

func TestLookupInsidePrefixes(t *testing.T) {
	db := testDB(t)
	rec, err := db.Lookup(netip.MustParseAddr("11.0.42.7"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ISP != "HostCo" || rec.Type != Hosting || rec.Country != "FR" || rec.City != "Roubaix" {
		t.Fatalf("lookup = %+v", rec)
	}
	rec, err = db.Lookup(netip.MustParseAddr("11.3.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ISP != "CableCo" || rec.Type != Commercial {
		t.Fatalf("lookup = %+v", rec)
	}
	// Prefix 11.3 is CableCo's second prefix -> second location.
	if rec.City != "Miami" {
		t.Fatalf("city = %q, want Miami (round-robin locations)", rec.City)
	}
}

func TestLookupOutsideRegistry(t *testing.T) {
	db := testDB(t)
	if _, err := db.Lookup(netip.MustParseAddr("99.0.0.1")); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLookupRejectsIPv6(t *testing.T) {
	db := testDB(t)
	if _, err := db.Lookup(netip.MustParseAddr("::1")); err == nil {
		t.Fatal("IPv6 lookup succeeded")
	}
}

func TestRandomIPStaysInsideISP(t *testing.T) {
	db := testDB(t)
	s := rng.New(1, "geoip")
	for i := 0; i < 500; i++ {
		addr, err := db.RandomIP(s, "CableCo", 0)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := db.Lookup(addr)
		if err != nil {
			t.Fatal(err)
		}
		if rec.ISP != "CableCo" {
			t.Fatalf("RandomIP(CableCo) = %v resolved to %q", addr, rec.ISP)
		}
	}
}

func TestRandomIPConcentration(t *testing.T) {
	db := testDB(t)
	s := rng.New(2, "conc")
	first := 0
	const n = 2000
	for i := 0; i < n; i++ {
		addr, err := db.RandomIP(s, "CableCo", 0.9)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Slash16(addr)
		if err != nil {
			t.Fatal(err)
		}
		if p == db.ISPByName("CableCo").Prefixes[0].Base {
			first++
		}
	}
	frac := float64(first) / n
	if frac < 0.85 || frac > 0.99 {
		t.Fatalf("concentration = %v, want ~0.9+", frac)
	}
}

func TestRandomIPUnknownISP(t *testing.T) {
	db := testDB(t)
	if _, err := db.RandomIP(rng.New(1, "x"), "NoSuch", 0); err == nil {
		t.Fatal("unknown ISP accepted")
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	_, err := NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("A", Hosting, 1, []Location{{"FR", "Paris"}}).
		AddISP("A", Hosting, 1, []Location{{"FR", "Paris"}}).
		Build()
	if err == nil {
		t.Fatal("duplicate ISP accepted")
	}
}

func TestBuilderRejectsBadStart(t *testing.T) {
	if _, err := NewBuilder(netip.MustParseAddr("11.0.0.1")).Build(); err == nil {
		t.Fatal("unaligned start accepted")
	}
	if _, err := NewBuilder(netip.MustParseAddr("::1")).Build(); err == nil {
		t.Fatal("IPv6 start accepted")
	}
}

func TestBuilderRejectsBadISPArgs(t *testing.T) {
	if _, err := NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("", Hosting, 1, []Location{{"FR", "Paris"}}).Build(); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("A", Hosting, 0, []Location{{"FR", "Paris"}}).Build(); err == nil {
		t.Fatal("zero prefixes accepted")
	}
	if _, err := NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("A", Hosting, 1, nil).Build(); err == nil {
		t.Fatal("no locations accepted")
	}
}

func TestSlash16(t *testing.T) {
	p, err := Slash16(netip.MustParseAddr("11.7.200.13"))
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(11)<<24 | uint32(7)<<16
	if p != want {
		t.Fatalf("Slash16 = %x, want %x", p, want)
	}
}

func TestDefaultDBCoversPaperISPs(t *testing.T) {
	db, err := DefaultDB()
	if err != nil {
		t.Fatalf("DefaultDB: %v", err)
	}
	for _, name := range []string{OVH, Comcast, Tzulo, FDCServers, FourRWEB, Telefonica, Virgin} {
		if db.ISPByName(name) == nil {
			t.Errorf("DefaultDB missing %q", name)
		}
	}
	// OVH must look like the paper's OVH: few prefixes.
	ovh := db.ISPByName(OVH)
	if len(ovh.Prefixes) > 10 {
		t.Errorf("OVH has %d prefixes, want few", len(ovh.Prefixes))
	}
	if ovh.Type != Hosting {
		t.Errorf("OVH type = %v", ovh.Type)
	}
	// Comcast must be diverse: many prefixes, many cities.
	cc := db.ISPByName(Comcast)
	if len(cc.Prefixes) < 100 {
		t.Errorf("Comcast has %d prefixes, want hundreds", len(cc.Prefixes))
	}
	cities := map[string]bool{}
	for _, p := range cc.Prefixes {
		cities[p.City] = true
	}
	if len(cities) < 20 {
		t.Errorf("Comcast spans %d cities, want many", len(cities))
	}
	if cc.Type != Commercial {
		t.Errorf("Comcast type = %v", cc.Type)
	}
}

func TestDefaultDBLookupEveryISPRandomIP(t *testing.T) {
	db, err := DefaultDB()
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3, "all")
	for _, name := range db.ISPNames() {
		addr, err := db.RandomIP(s, name, 0)
		if err != nil {
			t.Fatalf("RandomIP(%s): %v", name, err)
		}
		rec, err := db.Lookup(addr)
		if err != nil {
			t.Fatalf("Lookup(%v) for %s: %v", addr, name, err)
		}
		if rec.ISP != name {
			t.Fatalf("RandomIP(%s) resolved to %s", name, rec.ISP)
		}
	}
}

func TestFakeHostingProvidersAreHosting(t *testing.T) {
	db, err := DefaultDB()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range FakeHostingProviders() {
		isp := db.ISPByName(name)
		if isp == nil || isp.Type != Hosting {
			t.Errorf("%s should be a registered hosting provider", name)
		}
	}
}

// Property: every address generated by RandomIP resolves, and its /16 is one
// of the owning ISP's prefixes.
func TestRandomIPLookupProperty(t *testing.T) {
	db := testDB(t)
	s := rng.New(4, "prop")
	names := db.ISPNames()
	f := func(pick uint8, conc uint8) bool {
		name := names[int(pick)%len(names)]
		addr, err := db.RandomIP(s, name, float64(conc%100)/100)
		if err != nil {
			return false
		}
		p16, err := Slash16(addr)
		if err != nil {
			return false
		}
		for _, p := range db.ISPByName(name).Prefixes {
			if p.Base == p16 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
