package classify

import (
	"errors"

	"btpub/internal/dataset"
	"btpub/internal/geoip"
)

// FactsSeed carries the two distinct-download aggregates that dominate
// BuildFacts' cost — both O(observations) passes over the columnar store
// — precomputed by an incremental maintainer (internal/delta) that only
// recounts the torrents and users a lake delta touched.
//
// The seed must match what BuildFacts would compute over the same
// dataset exactly: DownloadsByTorrent[tid] is the number of distinct
// downloader IPs observed on torrent tid (zero or out-of-range slots
// mean no observations), and UserDownloads maps every publisher
// identity — username, or "ip:<addr>" for username-less records — to
// its distinct downloader count across all its torrents (an IP that
// fetched several counts once). The equivalence gate in internal/delta
// holds seeded builds byte-identical to unseeded ones.
type FactsSeed struct {
	DownloadsByTorrent []int
	UserDownloads      map[string]int
}

// downloadsByTorrent is nil-receiver-safe so buildFacts can branch on it.
func (s *FactsSeed) downloadsByTorrent() []int {
	if s == nil {
		return nil
	}
	return s.DownloadsByTorrent
}

// BuildFactsSeeded is BuildFacts with the distinct-download passes
// replaced by the seed's precomputed results.
func BuildFactsSeeded(ds *dataset.Dataset, db *geoip.DB, seed *FactsSeed) (*Facts, error) {
	if seed == nil {
		return nil, errors.New("classify: nil facts seed")
	}
	return buildFacts(ds, db, seed)
}
