package classify

import (
	"strings"
	"testing"

	"btpub/internal/dataset"
	"btpub/internal/population"
)

// FuzzExtractPromo checks ExtractPromo's contract against arbitrary
// channel contents: the channel precedence is textbox > file name >
// bundled files, the returned URL is the lower-cased first urlPattern
// match of the winning channel, and no promo ever comes out of a record
// none of whose channels match.
func FuzzExtractPromo(f *testing.F) {
	f.Add("come to www.divxatope.com now", "movie-www.ultra.net.avi", "Visit forum.megaboard.org.txt")
	f.Add("", "", "")
	f.Add("WWW.UPPER.COM", "x.avi", "")
	f.Add("no urls", "plain.avi", "readme www.bundle-site.org.txt")
	f.Add("forum.foo.org wins?", "www.bar.com.avi", "www.baz.net")
	f.Add("a\x00b www..com", "-www.a-.com", "www.a.com\nwww.b.com")
	f.Fuzz(func(t *testing.T, desc, fname, bundled string) {
		rec := dataset.TorrentRecord{
			Description:  desc,
			FileName:     fname,
			BundledFiles: []string{bundled},
		}
		url, ch := ExtractPromo(&rec)
		if url == "" {
			if ch != population.PromoNone {
				t.Fatalf("empty URL but channel %v", ch)
			}
			for _, text := range []string{desc, fname, bundled} {
				if m := urlPattern.FindString(text); m != "" {
					t.Fatalf("channel %q matched %q but ExtractPromo found nothing", text, m)
				}
			}
			return
		}
		if url != strings.ToLower(url) {
			t.Fatalf("URL %q not lower-cased", url)
		}
		var want string
		var wantCh population.PromoChannel
		switch {
		case urlPattern.FindString(desc) != "":
			want, wantCh = urlPattern.FindString(desc), population.PromoTextbox
		case urlPattern.FindString(fname) != "":
			want, wantCh = urlPattern.FindString(fname), population.PromoFilename
		default:
			want, wantCh = urlPattern.FindString(bundled), population.PromoBundledFile
		}
		if want == "" {
			t.Fatalf("got (%q, %v) from a record with no match", url, ch)
		}
		if ch != wantCh || url != strings.ToLower(want) {
			t.Fatalf("got (%q, %v), want (%q, %v)", url, ch, strings.ToLower(want), wantCh)
		}
	})
}
