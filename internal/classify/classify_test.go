package classify

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/population"
)

var t0 = time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)

// buildDB gives two ISPs: one hosting, two commercial.
func buildDB(t *testing.T) *geoip.DB {
	t.Helper()
	db, err := geoip.NewBuilder(netip.MustParseAddr("11.0.0.0")).
		AddISP("HostCo", geoip.Hosting, 2, []geoip.Location{{Country: "FR", City: "Paris"}}).
		AddISP("CableA", geoip.Commercial, 4, []geoip.Location{{Country: "US", City: "Denver"}}).
		AddISP("CableB", geoip.Commercial, 4, []geoip.Location{{Country: "US", City: "Miami"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// synthDataset builds a controlled dataset:
//   - "bigpub" publishes 10 torrents from one hosting IP pool (2 IPs)
//   - "homepub" publishes 6 torrents from 3 IPs in one commercial ISP
//   - "roamer" publishes 5 torrents from 2 ISPs
//   - "single" publishes 4 torrents from one IP
//   - "ghost1/2" share one IP, both accounts deleted (fake)
//   - 20 small one-torrent publishers
func synthDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := &dataset.Dataset{Name: "synth", Start: t0, End: t0.AddDate(0, 1, 0)}
	id := 0
	add := func(user, ip, desc, fname string, bundled []string, removed bool, downloads int) {
		rec := &dataset.TorrentRecord{
			TorrentID: id, InfoHash: fmt.Sprintf("%040d", id),
			Title: fmt.Sprintf("T%d", id), Category: "Video > Movies",
			Username: user, PublisherIP: ip, Published: t0.Add(time.Duration(id) * time.Hour),
			Description: desc, FileName: fname, BundledFiles: bundled, Removed: removed,
		}
		ds.AddTorrent(rec)
		for d := 0; d < downloads; d++ {
			ds.AddObservation(dataset.Observation{
				TorrentID: id,
				IP:        fmt.Sprintf("99.1.%d.%d", id, d),
				At:        t0.Add(time.Duration(id)*time.Hour + time.Minute),
			})
		}
		id++
	}
	// bigpub: hosting pool, promotes www.bigpub.com in the textbox.
	for i := 0; i < 10; i++ {
		ip := "11.0.0.10"
		if i%2 == 1 {
			ip = "11.1.0.11"
		}
		add("bigpub", ip, "visit www.bigpub.com for more", "file.avi", nil, false, 40)
	}
	// homepub: dynamic IPs in CableA (11.2-11.5), no promotion.
	for i := 0; i < 6; i++ {
		add("homepub", fmt.Sprintf("11.%d.0.7", 2+i%3), "enjoy!", "file.avi", nil, false, 10)
	}
	// roamer: multi-ISP (CableA + CableB), promotes via filename.
	for i := 0; i < 5; i++ {
		ip := "11.2.9.9"
		if i%2 == 1 {
			ip = "11.6.9.9" // CableB
		}
		add("roamer", ip, "no links here", "movie-www.roampix.com.avi", nil, false, 20)
	}
	// single: one IP, promotes via bundled file.
	for i := 0; i < 4; i++ {
		add("single", "11.3.0.40", "plain", "file.avi",
			[]string{"Visit www.singleboard.org.txt"}, false, 15)
	}
	// ghosts: same IP, removed torrents, deleted accounts.
	for i := 0; i < 3; i++ {
		add("ghost1", "11.0.0.66", "great quality", "fake.avi", nil, true, 5)
	}
	for i := 0; i < 3; i++ {
		add("ghost2", "11.0.0.66", "great quality", "fake.avi", nil, true, 5)
	}
	// long tail
	for i := 0; i < 20; i++ {
		add(fmt.Sprintf("tail%02d", i), "", "nothing", "file.avi", nil, false, 2)
	}
	ds.Users = []dataset.UserRecord{
		{Username: "bigpub", Exists: true, FirstUpload: t0.AddDate(-1, 0, 0), TotalUploads: 300},
		{Username: "homepub", Exists: true, FirstUpload: t0.AddDate(0, -6, 0), TotalUploads: 50},
		{Username: "roamer", Exists: true, FirstUpload: t0.AddDate(0, -3, 0), TotalUploads: 30},
		{Username: "single", Exists: true, FirstUpload: t0.AddDate(-2, 0, 0), TotalUploads: 100},
		{Username: "ghost1", Exists: false},
		{Username: "ghost2", Exists: false},
	}
	return ds
}

func TestBuildFactsAggregates(t *testing.T) {
	ds := synthDataset(t)
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	big := f.Users["bigpub"]
	if big == nil || len(big.TorrentIDs) != 10 {
		t.Fatalf("bigpub facts = %+v", big)
	}
	if len(big.IPs) != 2 {
		t.Fatalf("bigpub IPs = %v", big.IPs)
	}
	if big.Downloads != 400 {
		t.Fatalf("bigpub downloads = %d", big.Downloads)
	}
	for _, rec := range big.ISPs {
		if rec.ISP != "HostCo" {
			t.Fatalf("bigpub ISP = %v", rec)
		}
	}
	if f.TotalTorrents != 51 {
		t.Fatalf("total torrents = %d", f.TotalTorrents)
	}
}

func TestFakeDetection(t *testing.T) {
	ds := synthDataset(t)
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Users["ghost1"].Fake() || !f.Users["ghost2"].Fake() {
		t.Fatal("deleted accounts not classified fake")
	}
	if f.Users["bigpub"].Fake() || f.Users["homepub"].Fake() {
		t.Fatal("genuine publisher classified fake")
	}
	// Shared IP is visible in the ByIP index.
	if got := len(f.ByIP["11.0.0.66"]); got != 2 {
		t.Fatalf("shared IP maps to %d usernames, want 2", got)
	}
}

func TestBuildGroups(t *testing.T) {
	ds := synthDataset(t)
	f, _ := BuildFacts(ds, buildDB(t))
	g := f.BuildGroups(4, 10)
	if len(g.Top) != 4 {
		t.Fatalf("top size = %d", len(g.Top))
	}
	// ghosts are fake and must not be in Top despite publishing 3 each.
	for _, u := range g.Top {
		if u.Fake() {
			t.Fatalf("fake %q in Top", u.Username)
		}
	}
	if g.Top[0].Username != "bigpub" {
		t.Fatalf("top[0] = %q", g.Top[0].Username)
	}
	if len(g.Fake) != 2 {
		t.Fatalf("fake group = %d", len(g.Fake))
	}
	// bigpub is hosted; homepub commercial.
	inHP, inCI := false, false
	for _, u := range g.TopHP {
		if u.Username == "bigpub" {
			inHP = true
		}
	}
	for _, u := range g.TopCI {
		if u.Username == "homepub" || u.Username == "roamer" {
			inCI = true
		}
	}
	if !inHP || !inCI {
		t.Fatalf("HP/CI split wrong: HP=%v CI=%v", names(g.TopHP), names(g.TopCI))
	}
	if len(g.All) == 0 {
		t.Fatal("empty All sample")
	}
}

func names(us []*UserFacts) []string {
	out := make([]string, len(us))
	for i, u := range us {
		out[i] = u.Username
	}
	return out
}

func TestCrossAnalysis(t *testing.T) {
	ds := synthDataset(t)
	f, _ := BuildFacts(ds, buildDB(t))
	ca := f.Cross(10)
	if ca.TopUsernames == 0 || ca.TopIPs == 0 {
		t.Fatalf("cross = %+v", ca)
	}
	if ca.MultiUserIPShare <= 0 {
		t.Fatal("shared fake IP not detected in top IPs")
	}
	if ca.HostingPoolShare <= 0 {
		t.Fatal("bigpub's hosting pool not classified")
	}
	if ca.DynamicShare <= 0 {
		t.Fatal("homepub's dynamic single-ISP case not classified")
	}
	if ca.MultiISPShare <= 0 {
		t.Fatal("roamer's multi-ISP case not classified")
	}
	if ca.SingleIPShare <= 0 {
		t.Fatal("single-IP case not classified")
	}
	if ca.DynamicAvgIPs < 2 {
		t.Fatalf("dynamic avg IPs = %v", ca.DynamicAvgIPs)
	}
}

func TestExtractPromo(t *testing.T) {
	cases := []struct {
		rec     dataset.TorrentRecord
		wantURL string
		wantCh  population.PromoChannel
	}{
		{dataset.TorrentRecord{Description: "come to www.divxatope.com now"},
			"www.divxatope.com", population.PromoTextbox},
		{dataset.TorrentRecord{FileName: "movie-www.ultra.net.avi"},
			"www.ultra.net", population.PromoFilename},
		{dataset.TorrentRecord{BundledFiles: []string{"Visit forum.megaboard.org.txt"}},
			"forum.megaboard.org", population.PromoBundledFile},
		{dataset.TorrentRecord{Description: "no urls at all"},
			"", population.PromoNone},
		// Textbox wins when several channels carry URLs.
		{dataset.TorrentRecord{
			Description: "см. www.first.com",
			FileName:    "x-www.second.com.avi",
		}, "www.first.com", population.PromoTextbox},
	}
	for i, tc := range cases {
		url, ch := ExtractPromo(&tc.rec)
		if url != tc.wantURL || ch != tc.wantCh {
			t.Errorf("case %d: got (%q, %v), want (%q, %v)", i, url, ch, tc.wantURL, tc.wantCh)
		}
	}
}

// stubInspector classifies URLs by name.
type stubInspector struct{}

func (stubInspector) Inspect(url string) (population.BusinessType, string, error) {
	switch url {
	case "www.bigpub.com":
		return population.BusinessPrivatePortal, "es", nil
	case "www.roampix.com":
		return population.BusinessImageHosting, "", nil
	case "www.singleboard.org":
		return population.BusinessForum, "", nil
	}
	return population.BusinessNone, "", fmt.Errorf("unknown %q", url)
}

func TestClassifyBusiness(t *testing.T) {
	ds := synthDataset(t)
	f, _ := BuildFacts(ds, buildDB(t))
	g := f.BuildGroups(4, 10)
	profiles, err := ClassifyBusiness(f, g, ds.ByTorrentID(), stubInspector{})
	if err != nil {
		t.Fatal(err)
	}
	byUser := map[string]BusinessProfile{}
	for _, p := range profiles {
		byUser[p.Username] = p
	}
	if p := byUser["bigpub"]; p.Class != BTPortal || p.URL != "www.bigpub.com" || p.Language != "es" {
		t.Fatalf("bigpub profile = %+v", p)
	}
	if p := byUser["roamer"]; p.Class != OtherWeb {
		t.Fatalf("roamer profile = %+v", p)
	}
	if p := byUser["single"]; p.Class != OtherWeb || p.URL != "www.singleboard.org" {
		t.Fatalf("single profile = %+v", p)
	}
	if p := byUser["homepub"]; p.Class != Altruist {
		t.Fatalf("homepub profile = %+v", p)
	}
	// Channel accounting: bigpub used the textbox.
	if byUser["bigpub"].Channels[population.PromoTextbox] != 10 {
		t.Fatalf("bigpub channels = %v", byUser["bigpub"].Channels)
	}
}

// TestDownloadsDistinctAcrossTorrents is the regression test for the
// double-counting bug: one IP downloading two torrents of the same user
// must count once in the user's Downloads, while the per-torrent counts
// (and their dataset-level sum) still see it twice.
func TestDownloadsDistinctAcrossTorrents(t *testing.T) {
	ds := &dataset.Dataset{Name: "dup", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < 2; i++ {
		ds.AddTorrent(&dataset.TorrentRecord{
			TorrentID: i, InfoHash: fmt.Sprintf("%040d", i),
			Username: "dualpub", Published: t0.Add(time.Duration(i) * time.Hour),
		})
		ds.AddObservation(dataset.Observation{
			TorrentID: i, IP: "99.0.0.1", At: t0.Add(time.Duration(i)*time.Hour + time.Minute),
		})
	}
	ds.Users = []dataset.UserRecord{{Username: "dualpub", Exists: true}}
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	u := f.Users["dualpub"]
	if u.Downloads != 1 {
		t.Fatalf("Downloads = %d, want 1 (distinct across the user's torrents)", u.Downloads)
	}
	if f.DownloadsByTorrent[0] != 1 || f.DownloadsByTorrent[1] != 1 {
		t.Fatalf("per-torrent counts = %v", f.DownloadsByTorrent)
	}
	if f.TotalDownloads != 2 {
		t.Fatalf("TotalDownloads = %d, want 2 (per-torrent sum)", f.TotalDownloads)
	}
}

// TestAccountDeletedIPIdentified covers the mn08 fallback path: a
// publisher identified only by IP is keyed "ip:<addr>", and a deletion
// record under that resolved identity must land as AccountDeleted.
func TestAccountDeletedIPIdentified(t *testing.T) {
	ds := &dataset.Dataset{Name: "mn08", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < 4; i++ {
		ds.AddTorrent(&dataset.TorrentRecord{
			TorrentID: i, InfoHash: fmt.Sprintf("%040d", i),
			PublisherIP: "11.0.0.5", Published: t0,
		})
	}
	ds.Users = []dataset.UserRecord{{Username: "ip:11.0.0.5", Exists: false}}
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	u := f.Users["ip:11.0.0.5"]
	if u == nil || !u.AccountDeleted || !u.Fake() {
		t.Fatalf("ip-identified publisher = %+v, want AccountDeleted/fake", u)
	}
}

func TestAliasClustersAndMerge(t *testing.T) {
	ds := synthDataset(t)
	// Alias trio: three accounts splitting one operator's uploads over a
	// shared two-IP pool, each promoting the same portal.
	id := len(ds.Torrents)
	for i := 0; i < 9; i++ {
		ip := "11.1.0.80"
		if i%2 == 1 {
			ip = "11.0.0.81"
		}
		ds.AddTorrent(&dataset.TorrentRecord{
			TorrentID: id, InfoHash: fmt.Sprintf("%040d", id),
			Username: fmt.Sprintf("cloak%d", i%3), PublisherIP: ip,
			Description: "visit www.cloaknet.com", Published: t0.Add(time.Duration(id) * time.Hour),
		})
		// The same two loyal downloaders fetch everything the operator
		// publishes: merged Downloads must stay 2, not 3×2.
		for d := 0; d < 2; d++ {
			ds.AddObservation(dataset.Observation{
				TorrentID: id, IP: fmt.Sprintf("98.0.0.%d", d),
				At: t0.Add(time.Duration(id)*time.Hour + time.Minute),
			})
		}
		id++
	}
	for i := 0; i < 3; i++ {
		ds.Users = append(ds.Users, dataset.UserRecord{Username: fmt.Sprintf("cloak%d", i), Exists: true})
	}
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	clusters := f.AliasClusters()
	var cloak, ghosts *AliasCluster
	for i := range clusters {
		switch clusters[i].Usernames[0] {
		case "cloak0":
			cloak = &clusters[i]
		case "ghost1":
			ghosts = &clusters[i]
		}
	}
	if cloak == nil || len(cloak.Usernames) != 3 || cloak.Fake {
		t.Fatalf("alias cluster = %+v", cloak)
	}
	if len(cloak.SharedIPs) != 2 || cloak.Torrents != 9 {
		t.Fatalf("alias cluster shape = %+v", cloak)
	}
	if ghosts == nil || !ghosts.Fake {
		t.Fatalf("ghost cohort = %+v, want fake (deleted accounts)", ghosts)
	}

	merged := f.MergeAliases()
	op := merged.Users["cloak0"]
	if op == nil || len(op.TorrentIDs) != 9 || len(op.IPs) != 2 {
		t.Fatalf("merged operator = %+v", op)
	}
	if op.Downloads != 2 {
		t.Fatalf("merged Downloads = %d, want 2 (distinct across the cluster)", op.Downloads)
	}
	if merged.Users["cloak1"] != nil || merged.Users["cloak2"] != nil {
		t.Fatal("cluster members not folded")
	}
	// The ghost cohort folds into one fake entity under the first name.
	if g := merged.Users["ghost1"]; g == nil || !g.Fake() || len(g.TorrentIDs) != 6 {
		t.Fatalf("merged ghost cohort = %+v", g)
	}
	// The merged operator now outranks the individually-small accounts and
	// classifies as a promoter over the combined uploads.
	groups := merged.BuildGroups(4, 10)
	profiles, err := ClassifyBusiness(merged, groups, ds.ByTorrentID(), stubInspector{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range profiles {
		if p.Username == "cloak0" {
			found = true
			if p.Class == Altruist || p.URL != "www.cloaknet.com" {
				t.Fatalf("operator profile = %+v", p)
			}
		}
	}
	if !found {
		t.Fatal("merged operator missing from the top group")
	}
	// Unclustered facts are untouched views.
	if merged.Users["homepub"] != f.Users["homepub"] {
		t.Fatal("unclustered user unexpectedly copied")
	}
}

func TestBuildFactsMN08Style(t *testing.T) {
	// No usernames: publishers keyed by IP.
	ds := &dataset.Dataset{Name: "mn08", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < 6; i++ {
		ds.AddTorrent(&dataset.TorrentRecord{
			TorrentID: i, InfoHash: fmt.Sprintf("%040d", i),
			PublisherIP: "11.0.0.5", Published: t0,
		})
	}
	f, err := BuildFacts(ds, buildDB(t))
	if err != nil {
		t.Fatal(err)
	}
	u := f.Users["ip:11.0.0.5"]
	if u == nil || len(u.TorrentIDs) != 6 {
		t.Fatalf("IP-keyed user = %+v", u)
	}
}

func TestBuildFactsNilDataset(t *testing.T) {
	if _, err := BuildFacts(nil, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestClassifyBusinessValidation(t *testing.T) {
	ds := synthDataset(t)
	f, _ := BuildFacts(ds, buildDB(t))
	g := f.BuildGroups(4, 10)
	if _, err := ClassifyBusiness(f, g, nil, stubInspector{}); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := ClassifyBusiness(f, g, ds.ByTorrentID(), nil); err == nil {
		t.Fatal("nil inspector accepted")
	}
}
