// Package classify implements the publisher-identification pipeline of
// Sections 3.3 and 5.1: building per-username facts from a crawled
// dataset, detecting fake publishers, extracting the top-K group and its
// hosting/commercial split, the username↔IP cross-analysis, promo-URL
// extraction from the three channels, and the business-profile
// classification of the top publishers.
package classify

import (
	"errors"
	"regexp"
	"sort"
	"strings"

	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/population"
)

// UserFacts aggregates everything the crawl knows about one username.
type UserFacts struct {
	Username string
	// TorrentIDs published by this username during the window.
	TorrentIDs []int
	// IPs are the identified initial-seeder addresses across its torrents.
	IPs []string
	// ISPs maps each identified IP to its provider.
	ISPs map[string]geoip.Record
	// AccountDeleted is the portal moderation signal (user page gone).
	AccountDeleted bool
	// RemovedTorrents counts window uploads the portal took down.
	RemovedTorrents int
	// Downloads is the number of distinct downloader IPs observed across
	// the username's torrents: an IP that fetched several of the user's
	// torrents counts once.
	Downloads int
}

// Fake reports whether the username is classified as a fake publisher.
// The deciding signal is the one the paper uses: the portal deleted the
// account (footnote 3/8); a majority of removed uploads corroborates.
func (u *UserFacts) Fake() bool {
	if u.AccountDeleted {
		return true
	}
	return len(u.TorrentIDs) > 0 && u.RemovedTorrents*2 > len(u.TorrentIDs)
}

// Facts is the per-username index plus dataset-level context.
type Facts struct {
	Users map[string]*UserFacts
	// ByIP maps each identified publisher IP to the usernames seen on it.
	ByIP map[string][]string
	// DownloadsByTorrent counts distinct downloader IPs per torrent.
	DownloadsByTorrent map[int]int
	// TotalTorrents and TotalDownloads over the whole dataset.
	// TotalDownloads sums the per-torrent distinct counts (one IP in two
	// torrents is two downloads), matching the paper's Table 1 framing.
	TotalTorrents  int
	TotalDownloads int

	// obs is the dataset's columnar store, kept so alias merging can
	// recount distinct downloaders over a cluster's combined torrents.
	obs *dataset.ObsStore
}

// BuildFacts indexes a dataset. db resolves publisher IPs to ISPs; it may
// be nil when ISP information is not needed.
func BuildFacts(ds *dataset.Dataset, db *geoip.DB) (*Facts, error) {
	return buildFacts(ds, db, nil)
}

// buildFacts is BuildFacts with optionally injected distinct-download
// counts (see FactsSeed): the two O(observations) passes — per-torrent
// and per-user distinct downloader counting — are skipped when a seed
// supplies their results, everything else is computed identically.
func buildFacts(ds *dataset.Dataset, db *geoip.DB, seed *FactsSeed) (*Facts, error) {
	if ds == nil {
		return nil, errors.New("classify: nil dataset")
	}
	f := &Facts{
		Users:              map[string]*UserFacts{},
		ByIP:               map[string][]string{},
		DownloadsByTorrent: map[int]int{},
		obs:                &ds.Obs,
	}
	// Distinct downloader IPs per torrent: one pass over the columnar
	// store's per-torrent index, no per-torrent set maps.
	counts := seed.downloadsByTorrent()
	if counts == nil {
		counts = ds.Obs.DistinctIPCounts()
	}
	for tid, n := range counts {
		if n > 0 {
			f.DownloadsByTorrent[tid] = n
			f.TotalDownloads += n
		}
	}

	users := ds.UserByName()
	for _, rec := range ds.Torrents {
		f.TotalTorrents++
		name := rec.Username
		if name == "" {
			// mn08-style: identify publishers by IP instead.
			if rec.PublisherIP == "" {
				continue
			}
			name = "ip:" + rec.PublisherIP
		}
		u := f.Users[name]
		if u == nil {
			u = &UserFacts{Username: name, ISPs: map[string]geoip.Record{}}
			// Look the account up by the resolved identity: for mn08-style
			// records the username is empty and the publisher is keyed
			// "ip:<addr>", so probing users[rec.Username] would hit the
			// empty key and the deletion signal could never land.
			if ur, ok := users[name]; ok && !ur.Exists {
				u.AccountDeleted = true
			}
			f.Users[name] = u
		}
		u.TorrentIDs = append(u.TorrentIDs, rec.TorrentID)
		if rec.Removed {
			u.RemovedTorrents++
		}
		if rec.PublisherIP != "" {
			seen := false
			for _, ip := range u.IPs {
				if ip == rec.PublisherIP {
					seen = true
					break
				}
			}
			if !seen {
				u.IPs = append(u.IPs, rec.PublisherIP)
				f.ByIP[rec.PublisherIP] = append(f.ByIP[rec.PublisherIP], name)
				if db != nil {
					if addr, err := dataset.ParseIP(rec.PublisherIP); err == nil {
						if rec2, err := db.Lookup(addr); err == nil {
							u.ISPs[rec.PublisherIP] = rec2
						}
					}
				}
			}
		}
	}
	if seed != nil {
		for _, u := range f.Users {
			u.Downloads = seed.UserDownloads[u.Username]
		}
		return f, nil
	}
	users2 := make([]*UserFacts, 0, len(f.Users))
	for _, u := range f.Users {
		users2 = append(users2, u)
	}
	f.countDistinctDownloads(users2)
	return f, nil
}

// countDistinctDownloads sets each user's Downloads to the number of
// distinct downloader IPs across its torrents — one pass over the
// columnar store's per-torrent spans with an epoch-stamped array over the
// intern table, no per-user set maps. Summing per-torrent distinct counts
// instead would count an IP once per torrent it appears in.
func (f *Facts) countDistinctDownloads(users []*UserFacts) {
	if f.obs == nil {
		return
	}
	ix := f.obs.Index()
	stamp := make([]int32, f.obs.IPs().Len())
	for i := range stamp {
		stamp[i] = -1
	}
	for epoch, u := range users {
		mark := int32(epoch)
		n := 0
		for _, tid := range u.TorrentIDs {
			for _, oi := range ix.Span(tid) {
				if ip := f.obs.IPIndex(int(oi)); stamp[ip] != mark {
					stamp[ip] = mark
					n++
				}
			}
		}
		u.Downloads = n
	}
}

// Groups is the paper's five-way split (Section 4).
type Groups struct {
	// TopK is the size of the "top" cut (the paper's top-100 ≈ 3 %).
	TopK int
	// All is a sample of ordinary publishers (the paper's random 400).
	All []*UserFacts
	// Fake holds every username classified fake.
	Fake []*UserFacts
	// Top holds the top-K by published content with fakes removed.
	Top []*UserFacts
	// TopHP / TopCI split Top by provider type of their identified IPs;
	// usernames without identified IPs appear in neither.
	TopHP []*UserFacts
	TopCI []*UserFacts
}

// BuildGroups extracts the groups. topK <= 0 selects ceil(3 % of
// publishers), floored at 10; sampleSize <= 0 selects min(400, all).
func (f *Facts) BuildGroups(topK, sampleSize int) *Groups {
	all := make([]*UserFacts, 0, len(f.Users))
	for _, u := range f.Users {
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i].TorrentIDs) != len(all[j].TorrentIDs) {
			return len(all[i].TorrentIDs) > len(all[j].TorrentIDs)
		}
		return all[i].Username < all[j].Username
	})
	if topK <= 0 {
		topK = (len(all)*3 + 99) / 100
		if topK < 10 {
			topK = 10
		}
	}
	if topK > len(all) {
		topK = len(all)
	}
	g := &Groups{TopK: topK}
	for _, u := range all {
		if u.Fake() {
			g.Fake = append(g.Fake, u)
		}
	}
	// Top-K non-fake: walk the ranking, skipping fakes, exactly as the
	// paper removed the 16 compromised usernames from its top-100.
	for _, u := range all {
		if len(g.Top) >= topK {
			break
		}
		if u.Fake() {
			continue
		}
		g.Top = append(g.Top, u)
	}
	for _, u := range g.Top {
		hp, ci := 0, 0
		for _, rec := range u.ISPs {
			if rec.Type == geoip.Hosting {
				hp++
			} else {
				ci++
			}
		}
		switch {
		case hp > 0 && hp >= ci:
			g.TopHP = append(g.TopHP, u)
		case ci > 0:
			g.TopCI = append(g.TopCI, u)
		}
	}
	// Random-but-deterministic sample representing standard behaviour
	// ("All" in the figures — the paper's random 400 publishers). Fake
	// accounts are excluded: they are studied as their own group, and the
	// paper uses this sample to characterise ordinary users.
	if sampleSize <= 0 {
		sampleSize = 400
	}
	rest := all[min(topK, len(all)):]
	stride := 1
	if len(rest) > sampleSize {
		stride = len(rest) / sampleSize
	}
	for i := 0; i < len(rest) && len(g.All) < sampleSize; i += stride {
		if rest[i].Fake() {
			continue
		}
		g.All = append(g.All, rest[i])
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Section 3.3 cross-analysis
// ---------------------------------------------------------------------

// CrossAnalysis reproduces the §3.3 numbers.
type CrossAnalysis struct {
	// TopIPs examined (by published files).
	TopIPs int
	// MultiUserIPShare is the fraction of those IPs used by >1 username
	// (the fake-publisher fingerprint; paper: 45 %).
	MultiUserIPShare float64

	// TopUsernames examined.
	TopUsernames int
	// Shares of the paper's four username→IP cases; they sum to <= 1
	// (usernames without identified IPs are unclassified).
	SingleIPShare    float64
	HostingPoolShare float64 // few IPs, hosting providers (34 %)
	DynamicShare     float64 // many IPs, one commercial ISP (24 %)
	MultiISPShare    float64 // several commercial ISPs (16 %)
	// Mean identified-IP counts per case.
	HostingPoolAvgIPs float64
	DynamicAvgIPs     float64
	MultiISPAvgIPs    float64
}

// Cross runs the §3.3 username↔IP cross-analysis over the top-k of each
// dimension (the paper uses 100 for both).
func (f *Facts) Cross(k int) CrossAnalysis {
	if k <= 0 {
		k = 100
	}
	out := CrossAnalysis{}

	// --- Top IPs by published files --------------------------------
	type ipCount struct {
		ip    string
		files int
	}
	fileCount := map[string]int{}
	for _, u := range f.Users {
		for _, ip := range u.IPs {
			fileCount[ip] += len(u.TorrentIDs) / max(1, len(u.IPs))
		}
	}
	ips := make([]ipCount, 0, len(fileCount))
	for ip, n := range fileCount {
		ips = append(ips, ipCount{ip, n})
	}
	sort.Slice(ips, func(i, j int) bool {
		if ips[i].files != ips[j].files {
			return ips[i].files > ips[j].files
		}
		return ips[i].ip < ips[j].ip
	})
	if len(ips) > k {
		ips = ips[:k]
	}
	out.TopIPs = len(ips)
	multi := 0
	for _, ic := range ips {
		if len(f.ByIP[ic.ip]) > 1 {
			multi++
		}
	}
	if out.TopIPs > 0 {
		out.MultiUserIPShare = float64(multi) / float64(out.TopIPs)
	}

	// --- Top usernames by published files ----------------------------
	users := make([]*UserFacts, 0, len(f.Users))
	for _, u := range f.Users {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		if len(users[i].TorrentIDs) != len(users[j].TorrentIDs) {
			return len(users[i].TorrentIDs) > len(users[j].TorrentIDs)
		}
		return users[i].Username < users[j].Username
	})
	if len(users) > k {
		users = users[:k]
	}
	out.TopUsernames = len(users)
	var nSingle, nPool, nDyn, nMulti int
	var sPool, sDyn, sMulti float64
	for _, u := range users {
		switch {
		case len(u.IPs) == 0:
			// Unclassifiable (publisher IP never identified).
		case len(u.IPs) == 1:
			nSingle++
		default:
			hosting, commercialISPs := 0, map[string]bool{}
			for ip, rec := range u.ISPs {
				_ = ip
				if rec.Type == geoip.Hosting {
					hosting++
				} else {
					commercialISPs[rec.ISP] = true
				}
			}
			switch {
			case hosting > 0 && len(commercialISPs) == 0:
				nPool++
				sPool += float64(len(u.IPs))
			case len(commercialISPs) <= 1:
				nDyn++
				sDyn += float64(len(u.IPs))
			default:
				nMulti++
				sMulti += float64(len(u.IPs))
			}
		}
	}
	if out.TopUsernames > 0 {
		n := float64(out.TopUsernames)
		out.SingleIPShare = float64(nSingle) / n
		out.HostingPoolShare = float64(nPool) / n
		out.DynamicShare = float64(nDyn) / n
		out.MultiISPShare = float64(nMulti) / n
	}
	if nPool > 0 {
		out.HostingPoolAvgIPs = sPool / float64(nPool)
	}
	if nDyn > 0 {
		out.DynamicAvgIPs = sDyn / float64(nDyn)
	}
	if nMulti > 0 {
		out.MultiISPAvgIPs = sMulti / float64(nMulti)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Section 5 promo-URL extraction and business classification
// ---------------------------------------------------------------------

// urlPattern finds promoted domains in free text, file names and bundled
// file names.
var urlPattern = regexp.MustCompile(`(?i)\b((?:www|forum)\.[a-z0-9][a-z0-9-]*\.(?:com|net|org))\b`)

// ExtractPromo scans one torrent record's three channels (Section 5:
// file name, page textbox, bundled file name) and returns the promoted
// URL and the channel it was found in.
func ExtractPromo(rec *dataset.TorrentRecord) (url string, channel population.PromoChannel) {
	if m := urlPattern.FindString(rec.Description); m != "" {
		return strings.ToLower(m), population.PromoTextbox
	}
	if m := urlPattern.FindString(rec.FileName); m != "" {
		return strings.ToLower(m), population.PromoFilename
	}
	for _, bf := range rec.BundledFiles {
		if m := urlPattern.FindString(bf); m != "" {
			return strings.ToLower(m), population.PromoBundledFile
		}
	}
	return "", population.PromoNone
}

// SiteInspector resolves a promoted URL to the business run behind it —
// the mechanised form of the paper's manual site visits. Implemented by
// webmon.Directory.
type SiteInspector interface {
	Inspect(url string) (population.BusinessType, string, error)
}

// BusinessClass is the paper's three-way split of top publishers.
type BusinessClass int

const (
	// Altruist publishers promote nothing.
	Altruist BusinessClass = iota
	// BTPortal publishers promote private BitTorrent portals/trackers.
	BTPortal
	// OtherWeb publishers promote other kinds of web sites.
	OtherWeb
)

// String implements fmt.Stringer.
func (b BusinessClass) String() string {
	switch b {
	case Altruist:
		return "Altruistic Publishers"
	case BTPortal:
		return "BT Portals"
	case OtherWeb:
		return "Other Web sites"
	default:
		return "BusinessClass(?)"
	}
}

// BusinessProfile is the classification result for one top username.
type BusinessProfile struct {
	Username string
	Class    BusinessClass
	URL      string
	Channels map[population.PromoChannel]int // promo sightings per channel
	Language string
	// Content / Downloads shares relative to the whole dataset.
	Torrents  int
	Downloads int
}

// ClassifyBusiness inspects every top publisher's torrents for promo URLs
// and classifies the publisher's business (Section 5.1).
func ClassifyBusiness(f *Facts, g *Groups, byID map[int]*dataset.TorrentRecord, insp SiteInspector) ([]BusinessProfile, error) {
	if byID == nil || insp == nil {
		return nil, errors.New("classify: torrent index and inspector required")
	}
	out := make([]BusinessProfile, 0, len(g.Top))
	for _, u := range g.Top {
		prof := BusinessProfile{
			Username:  u.Username,
			Channels:  map[population.PromoChannel]int{},
			Torrents:  len(u.TorrentIDs),
			Downloads: u.Downloads,
		}
		urlVotes := map[string]int{}
		for _, tid := range u.TorrentIDs {
			rec := byID[tid]
			if rec == nil {
				continue
			}
			if url, ch := ExtractPromo(rec); url != "" {
				urlVotes[url]++
				prof.Channels[ch]++
			}
		}
		best, votes := "", 0
		for url, n := range urlVotes {
			if n > votes || (n == votes && url < best) {
				best, votes = url, n
			}
		}
		// A systematic promoter embeds its URL in a majority of uploads;
		// scattered matches are noise.
		if best != "" && votes*2 > len(u.TorrentIDs) {
			prof.URL = best
			biz, lang, err := insp.Inspect(best)
			if err == nil {
				prof.Language = lang
				if biz == population.BusinessPrivatePortal {
					prof.Class = BTPortal
				} else {
					prof.Class = OtherWeb
				}
			} else {
				prof.Class = OtherWeb // site vanished; still a promoter
			}
		} else {
			prof.Class = Altruist
		}
		out = append(out, prof)
	}
	return out, nil
}
