// Username-aliasing cross-analysis: the §3.3 counterattack against
// operators that spread uploads over several portal accounts. Accounts
// that share identified publisher IPs collapse into one operator-level
// entity, and the fake signals (account deletion, takedown majority)
// propagate across the whole cluster — so a cohort of throwaway accounts
// is caught as one fake operation even when moderation only flagged some
// of its members.

package classify

import (
	"sort"

	"btpub/internal/geoip"
)

// AliasCluster is one connected component of the username↔publisher-IP
// graph with more than one username — the fingerprint of a single
// operator running several portal accounts off one seeder pool.
type AliasCluster struct {
	// Usernames, sorted; the first member keys the merged entity.
	Usernames []string
	// SharedIPs are the identified publisher IPs seen on more than one
	// member, sorted.
	SharedIPs []string
	// Torrents counts the cluster's combined window uploads.
	Torrents int
	// Fake reports the cluster-level fake signal: any member's account
	// deleted, or a takedown majority over the combined uploads.
	Fake bool
}

// AliasClusters links usernames through shared identified publisher IPs
// (union-find over ByIP) and returns every cluster with at least two
// members, ordered by combined upload count (descending, then by key).
func (f *Facts) AliasClusters() []AliasCluster {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Smaller root wins: component roots are content-determined,
			// never iteration-order-determined.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, names := range f.ByIP {
		for i := 1; i < len(names); i++ {
			union(names[0], names[i])
		}
	}
	members := map[string][]string{}
	for name := range parent {
		root := find(name)
		members[root] = append(members[root], name)
	}
	// Every IP with more than one username links exactly the usernames it
	// lists, so after the unions all of them share one root: one pass
	// over ByIP assigns each linking IP to its cluster.
	sharedByRoot := map[string][]string{}
	for ip, names := range f.ByIP {
		if len(names) > 1 {
			root := find(names[0])
			sharedByRoot[root] = append(sharedByRoot[root], ip)
		}
	}
	var out []AliasCluster
	for root, names := range members {
		if len(names) < 2 {
			continue
		}
		sort.Strings(names)
		c := AliasCluster{Usernames: names}
		removed := 0
		for _, n := range names {
			if u := f.Users[n]; u != nil {
				c.Torrents += len(u.TorrentIDs)
				removed += u.RemovedTorrents
				if u.AccountDeleted {
					c.Fake = true
				}
			}
		}
		if removed*2 > c.Torrents {
			c.Fake = true
		}
		c.SharedIPs = append(c.SharedIPs, sharedByRoot[root]...)
		sort.Strings(c.SharedIPs)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Torrents != out[j].Torrents {
			return out[i].Torrents > out[j].Torrents
		}
		return out[i].Usernames[0] < out[j].Usernames[0]
	})
	return out
}

// MergeAliases returns a view of the facts with every alias cluster folded
// into one operator-level UserFacts keyed by the cluster's first username:
// torrent lists and IP sets union, Downloads is recounted as distinct
// downloader IPs over the combined torrents, and the fake signals
// propagate across the cluster. Group building and business classification
// over the merged facts therefore rank and label operators, not accounts —
// an aliasing operator whose accounts individually sit below the top cut
// surfaces, and a fake cohort is evicted wholesale. Facts with no alias
// clusters are returned unchanged; unclustered users are shared, not
// copied.
func (f *Facts) MergeAliases() *Facts {
	return f.MergeAliasClusters(f.AliasClusters())
}

// MergeAliasClusters is MergeAliases over clusters the caller already
// computed with AliasClusters, so a consumer needing both views (the
// serve layer caches the clusters alongside the merged facts) pays the
// union-find once.
func (f *Facts) MergeAliasClusters(clusters []AliasCluster) *Facts {
	if len(clusters) == 0 {
		return f
	}
	memberOf := map[string]int{}
	for ci, c := range clusters {
		for _, n := range c.Usernames {
			memberOf[n] = ci
		}
	}
	out := &Facts{
		Users:              make(map[string]*UserFacts, len(f.Users)),
		ByIP:               make(map[string][]string, len(f.ByIP)),
		DownloadsByTorrent: f.DownloadsByTorrent,
		TotalTorrents:      f.TotalTorrents,
		TotalDownloads:     f.TotalDownloads,
		obs:                f.obs,
	}
	merged := make([]*UserFacts, len(clusters))
	for name, u := range f.Users {
		ci, ok := memberOf[name]
		if !ok {
			out.Users[name] = u
			continue
		}
		m := merged[ci]
		if m == nil {
			m = &UserFacts{Username: clusters[ci].Usernames[0], ISPs: map[string]geoip.Record{}}
			merged[ci] = m
		}
		m.TorrentIDs = append(m.TorrentIDs, u.TorrentIDs...)
		m.RemovedTorrents += u.RemovedTorrents
		m.AccountDeleted = m.AccountDeleted || u.AccountDeleted
		m.Downloads += u.Downloads // refined below when the store is present
		for _, ip := range u.IPs {
			m.IPs = append(m.IPs, ip)
		}
		for ip, rec := range u.ISPs {
			m.ISPs[ip] = rec
		}
	}
	var recount []*UserFacts
	for _, m := range merged {
		if m == nil {
			continue
		}
		sort.Ints(m.TorrentIDs)
		sort.Strings(m.IPs)
		m.IPs = dedupSorted(m.IPs)
		out.Users[m.Username] = m
		recount = append(recount, m)
	}
	f.countDistinctDownloads(recount)
	for ip, names := range f.ByIP {
		seen := map[string]bool{}
		for _, n := range names {
			if ci, ok := memberOf[n]; ok {
				n = clusters[ci].Usernames[0]
			}
			if !seen[n] {
				seen[n] = true
				out.ByIP[ip] = append(out.ByIP[ip], n)
			}
		}
	}
	return out
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
