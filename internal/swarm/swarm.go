// Package swarm simulates the peer membership of one BitTorrent swarm over
// virtual time.
//
// The paper's crawler never sees a swarm directly — it sees what the
// tracker reports (a random subset of member IPs, seeder/leecher counts)
// and what individual peers answer over the wire protocol (handshake +
// bitfield). This package therefore models exactly that observable state:
// who is in the swarm at time t, which of them are seeders, what download
// progress each leecher has, and which peers are unreachable behind NAT.
//
// Peer arrivals follow a non-homogeneous Poisson process with rate
// λ(t) = λ0·exp(-t/τ) — interest in a torrent decays after publication.
// Fake torrents additionally stop attracting peers when the portal removes
// them, and their leechers abort quickly without ever completing (nobody
// can finish a decoy), which is what forces fake publishers into the
// always-on multi-torrent seeding signature of Section 4.3.
package swarm

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"time"

	"btpub/internal/metainfo"
	"btpub/internal/rng"
)

// Interval is a half-open time range [Start, End).
type Interval struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// ConsumerPool supplies downloader identities. Implemented by the ecosystem
// on top of the geoip database (commercial/residential ISP mix, no hosting
// providers — the paper checked that OVH never shows up as a consumer).
type ConsumerPool interface {
	// DrawConsumer returns the IP of a fresh downloader and whether it sits
	// behind a NAT (unreachable for inbound wire connections).
	DrawConsumer(s *rng.Stream) (addr netip.Addr, nat bool)
}

// Params configure one swarm.
type Params struct {
	InfoHash  metainfo.Hash
	TorrentID int
	Birth     time.Time // publication instant

	Lambda0 float64 // initial arrival rate, peers/day
	TauDays float64 // interest decay constant

	// Horizon bounds arrival generation (campaign end + drain margin).
	Horizon time.Duration

	// Removed, when non-zero, is the instant the portal pulled the torrent;
	// no arrivals happen after it.
	Removed time.Time

	// Fake leechers abort without completing and never seed.
	Fake bool

	// ContentSizeBytes drives download durations.
	ContentSizeBytes int64

	// NATFraction of peers cannot accept inbound connections.
	NATFraction float64

	// SeedProb is the probability a completed downloader stays to seed.
	SeedProb float64
	// MeanSeedHours is the mean post-completion seeding time.
	MeanSeedHours float64
	// AbortProb is the probability a genuine leecher gives up early.
	AbortProb float64
}

// Peer is one (non-publisher) swarm member.
type Peer struct {
	IP       netip.Addr
	NAT      bool
	Arrive   time.Time
	Complete time.Time // zero if never completed
	Depart   time.Time
}

// IsSeederAt reports whether the peer is a connected seeder at t.
func (p *Peer) IsSeederAt(t time.Time) bool {
	return !p.Complete.IsZero() && !t.Before(p.Complete) && t.Before(p.Depart)
}

// ActiveAt reports whether the peer is connected at t.
func (p *Peer) ActiveAt(t time.Time) bool {
	return !t.Before(p.Arrive) && t.Before(p.Depart)
}

// Progress returns the download progress in [0,1] at t (1 for seeders).
func (p *Peer) Progress(t time.Time) float64 {
	if !p.ActiveAt(t) {
		return 0
	}
	if !p.Complete.IsZero() && !t.Before(p.Complete) {
		return 1
	}
	end := p.Complete
	if end.IsZero() {
		end = p.Depart // aborting peer: progress ramps toward its exit
	}
	total := end.Sub(p.Arrive)
	if total <= 0 {
		return 0
	}
	f := float64(t.Sub(p.Arrive)) / float64(total)
	if f > 1 {
		f = 1
	}
	if p.Complete.IsZero() && f > 0.95 {
		f = 0.95 // aborters never reach 100 %
	}
	return f
}

// Swarm is the simulated membership state. Queries must use non-decreasing
// timestamps (the crawler only moves forward in time).
type Swarm struct {
	P Params

	peers []*Peer // sorted by Arrive; includes injected consumers

	// publisher presence: seeding intervals and active address per interval
	pubIntervals []Interval
	pubIPs       []netip.Addr

	// cursor state
	cursor  int        // next peer to admit
	active  activeHeap // admitted, not yet departed, ordered by Depart
	lastNow time.Time
}

type activeHeap []*Peer

func (h activeHeap) Len() int            { return len(h) }
func (h activeHeap) Less(i, j int) bool  { return h[i].Depart.Before(h[j].Depart) }
func (h activeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *activeHeap) Push(x interface{}) { *h = append(*h, x.(*Peer)) }
func (h *activeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

// New builds a swarm, pre-generating its full arrival schedule from the
// deterministic stream. extra peers (e.g. publishers consuming content from
// their home connection) are merged into the schedule.
func New(p Params, s *rng.Stream, pool ConsumerPool, extra []*Peer) (*Swarm, error) {
	if p.Lambda0 < 0 || p.TauDays <= 0 {
		return nil, fmt.Errorf("swarm: bad popularity λ0=%v τ=%v", p.Lambda0, p.TauDays)
	}
	if p.Horizon <= 0 {
		return nil, errors.New("swarm: horizon must be positive")
	}
	sw := &Swarm{P: p}
	sw.generateArrivals(s, pool)
	sw.peers = append(sw.peers, extra...)
	sort.Slice(sw.peers, func(i, j int) bool { return sw.peers[i].Arrive.Before(sw.peers[j].Arrive) })
	sw.lastNow = p.Birth.Add(-time.Second)
	return sw, nil
}

// generateArrivals draws the non-homogeneous Poisson schedule by thinning a
// homogeneous process at rate λ0.
func (sw *Swarm) generateArrivals(s *rng.Stream, pool ConsumerPool) {
	p := sw.P
	if p.Lambda0 == 0 {
		return
	}
	end := p.Birth.Add(p.Horizon)
	if !p.Removed.IsZero() && p.Removed.Before(end) {
		end = p.Removed
	}
	meanGap := 24.0 / p.Lambda0 // hours between candidate arrivals at peak
	for t := p.Birth; t.Before(end); {
		gap := s.Exp(meanGap)
		t = t.Add(time.Duration(gap * float64(time.Hour)))
		if !t.Before(end) {
			break
		}
		// Thinning: accept with probability λ(t)/λ0 = exp(-age/τ).
		ageDays := t.Sub(p.Birth).Hours() / 24
		if !s.Bool(expNeg(ageDays / p.TauDays)) {
			continue
		}
		ip, nat := pool.DrawConsumer(s)
		sw.peers = append(sw.peers, sw.makePeer(s, ip, nat, t))
	}
}

func expNeg(x float64) float64 {
	if x > 700 {
		return 0
	}
	return math.Exp(-x)
}

// makePeer rolls the lifecycle of one downloader arriving at t.
func (sw *Swarm) makePeer(s *rng.Stream, ip netip.Addr, nat bool, t time.Time) *Peer {
	p := sw.P
	peer := &Peer{IP: ip, NAT: nat, Arrive: t}
	if p.Fake {
		// Fake content: the download never verifies; users notice within
		// the hour and leave. Nobody ever seeds.
		stay := time.Duration(s.Uniform(10, 70) * float64(time.Minute))
		peer.Depart = t.Add(stay)
		return peer
	}
	// Download duration from content size and a consumer-bandwidth spread:
	// median rate ~150 MB/h with a log-normal factor.
	sizeMB := float64(p.ContentSizeBytes) / (1 << 20)
	if sizeMB < 1 {
		sizeMB = 1
	}
	medianHours := sizeMB / 150
	dl := s.LogNormalMedian(medianHours, 0.8)
	if dl < 0.05 {
		dl = 0.05
	}
	if dl > 240 {
		dl = 240
	}
	dur := time.Duration(dl * float64(time.Hour))
	if s.Bool(p.AbortProb) {
		peer.Depart = t.Add(time.Duration(s.Uniform(0.1, 0.9) * float64(dur)))
		return peer
	}
	peer.Complete = t.Add(dur)
	seed := time.Duration(0)
	if s.Bool(p.SeedProb) {
		seed = time.Duration(s.Exp(p.MeanSeedHours) * float64(time.Hour))
	} else {
		seed = time.Duration(s.Uniform(0, 10) * float64(time.Minute))
	}
	peer.Depart = peer.Complete.Add(seed)
	return peer
}

// SetPublisherPresence installs the publisher's seeding schedule: a list of
// intervals during which the publisher is connected as a seeder, with the
// address it uses in each interval. Must be called before queries.
func (sw *Swarm) SetPublisherPresence(intervals []Interval, ips []netip.Addr) error {
	if len(intervals) != len(ips) {
		return fmt.Errorf("swarm: %d intervals vs %d ips", len(intervals), len(ips))
	}
	for i := 1; i < len(intervals); i++ {
		if intervals[i].Start.Before(intervals[i-1].End) {
			return errors.New("swarm: publisher intervals must be sorted and disjoint")
		}
	}
	sw.pubIntervals = intervals
	sw.pubIPs = ips
	return nil
}

// publisherAt returns the publisher's address if it is seeding at t.
func (sw *Swarm) publisherAt(t time.Time) (netip.Addr, bool) {
	// Intervals are few (seeding windows); linear scan from the back is
	// fine and avoids holding extra cursor state.
	for i := len(sw.pubIntervals) - 1; i >= 0; i-- {
		iv := sw.pubIntervals[i]
		if iv.Contains(t) {
			return sw.pubIPs[i], true
		}
		if t.After(iv.End) {
			return netip.Addr{}, false
		}
	}
	return netip.Addr{}, false
}

// advance admits arrivals and evicts departures up to now.
func (sw *Swarm) advance(now time.Time) error {
	if now.Before(sw.lastNow) {
		return fmt.Errorf("swarm: time went backwards (%v < %v)", now, sw.lastNow)
	}
	sw.lastNow = now
	for sw.cursor < len(sw.peers) && !sw.peers[sw.cursor].Arrive.After(now) {
		heap.Push(&sw.active, sw.peers[sw.cursor])
		sw.cursor++
	}
	for len(sw.active) > 0 && !sw.active[0].Depart.After(now) {
		heap.Pop(&sw.active)
	}
	return nil
}

// Counts reports the numbers of seeders and leechers at now, including the
// publisher when present.
func (sw *Swarm) Counts(now time.Time) (seeders, leechers int, err error) {
	if err := sw.advance(now); err != nil {
		return 0, 0, err
	}
	for _, p := range sw.active {
		if !p.ActiveAt(now) {
			continue // admitted this instant but departing exactly now
		}
		if p.IsSeederAt(now) {
			seeders++
		} else {
			leechers++
		}
	}
	if _, ok := sw.publisherAt(now); ok {
		seeders++
	}
	return seeders, leechers, nil
}

// Member is a swarm member as visible to the tracker.
type Member struct {
	IP        netip.Addr
	Seeder    bool
	NAT       bool
	Publisher bool
	Progress  float64
}

// Members returns the full membership at now (publisher included).
func (sw *Swarm) Members(now time.Time) ([]Member, error) {
	if err := sw.advance(now); err != nil {
		return nil, err
	}
	out := make([]Member, 0, len(sw.active)+1)
	for _, p := range sw.active {
		if !p.ActiveAt(now) {
			continue
		}
		out = append(out, Member{
			IP:       p.IP,
			Seeder:   p.IsSeederAt(now),
			NAT:      p.NAT,
			Progress: p.Progress(now),
		})
	}
	if ip, ok := sw.publisherAt(now); ok {
		out = append(out, Member{IP: ip, Seeder: true, Publisher: true, Progress: 1})
	}
	return out, nil
}

// Sample returns up to max members drawn uniformly without replacement,
// mimicking a tracker's announce response.
func (sw *Swarm) Sample(now time.Time, max int, s *rng.Stream) ([]Member, error) {
	all, err := sw.Members(now)
	if err != nil {
		return nil, err
	}
	if len(all) <= max {
		return all, nil
	}
	s.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:max], nil
}

// PeerByIP finds the state of the member using addr at now; used by the
// crawler's wire-level probe. Returns ok=false if no such member is active.
func (sw *Swarm) PeerByIP(now time.Time, addr netip.Addr) (Member, bool, error) {
	all, err := sw.Members(now)
	if err != nil {
		return Member{}, false, err
	}
	for _, m := range all {
		if m.IP == addr {
			return m, true, nil
		}
	}
	return Member{}, false, nil
}

// SeederIntervals returns the time ranges during which at least min
// non-publisher seeders are simultaneously present. The ecosystem uses this
// to decide when a publisher can abandon a swarm (Section 4.3's
// "publisher can leave once there is an adequate fraction of other seeds").
func (sw *Swarm) SeederIntervals(min int) []Interval {
	if min <= 0 {
		min = 1
	}
	type event struct {
		at    time.Time
		delta int
	}
	var evs []event
	for _, p := range sw.peers {
		if p.Complete.IsZero() || !p.Depart.After(p.Complete) {
			continue
		}
		evs = append(evs, event{p.Complete, +1}, event{p.Depart, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].at.Equal(evs[j].at) {
			return evs[i].at.Before(evs[j].at)
		}
		return evs[i].delta < evs[j].delta // departures first at ties
	})
	var out []Interval
	count := 0
	var start time.Time
	inRun := false
	for _, e := range evs {
		count += e.delta
		if count >= min && !inRun {
			start, inRun = e.at, true
		} else if count < min && inRun {
			out = append(out, Interval{start, e.at})
			inRun = false
		}
	}
	if inRun {
		out = append(out, Interval{start, sw.P.Birth.Add(sw.P.Horizon)})
	}
	return out
}

// TotalArrivals reports how many downloader arrivals the swarm will ever
// see (ground truth, not crawler-observed).
func (sw *Swarm) TotalArrivals() int { return len(sw.peers) }

// PeakConcurrent computes the maximum simultaneous membership over the
// swarm's whole life (used by tests and the Appendix A validation, which
// needs the N in P = 1-(1-W/N)^m).
func (sw *Swarm) PeakConcurrent() int {
	type event struct {
		at    time.Time
		delta int
	}
	evs := make([]event, 0, 2*len(sw.peers))
	for _, p := range sw.peers {
		evs = append(evs, event{p.Arrive, +1}, event{p.Depart, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].at.Equal(evs[j].at) {
			return evs[i].at.Before(evs[j].at)
		}
		return evs[i].delta < evs[j].delta
	})
	peak, cur := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
