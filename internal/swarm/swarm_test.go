package swarm

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"btpub/internal/metainfo"
	"btpub/internal/rng"
)

var epoch = time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)

// fakePool hands out sequential addresses; every 3rd peer is NATed.
type fakePool struct{ n int }

func (f *fakePool) DrawConsumer(*rng.Stream) (netip.Addr, bool) {
	f.n++
	return netip.AddrFrom4([4]byte{10, byte(f.n >> 16), byte(f.n >> 8), byte(f.n)}), f.n%3 == 0
}

func defaultParams() Params {
	return Params{
		InfoHash:         metainfo.HashBytes([]byte("x")),
		Birth:            epoch,
		Lambda0:          48, // 2 per hour
		TauDays:          5,
		Horizon:          35 * 24 * time.Hour,
		ContentSizeBytes: 700 << 20,
		NATFraction:      0.33,
		SeedProb:         0.5,
		MeanSeedHours:    6,
		AbortProb:        0.15,
	}
}

func newSwarm(t *testing.T, p Params) *Swarm {
	t.Helper()
	sw, err := New(p, rng.New(1, "swarm-test"), &fakePool{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestArrivalVolumeMatchesExpectation(t *testing.T) {
	p := defaultParams()
	sw := newSwarm(t, p)
	// Expected arrivals = λ0·τ·(1-exp(-H/τ)) ≈ 48·5·(1-e^-7) ≈ 240.
	want := p.Lambda0 * p.TauDays * (1 - math.Exp(-35.0/p.TauDays))
	got := float64(sw.TotalArrivals())
	if got < want*0.75 || got > want*1.25 {
		t.Fatalf("arrivals = %v, want ~%v", got, want)
	}
}

func TestArrivalsDecay(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	firstWeek, lastWeek := 0, 0
	for _, p := range sw.peers {
		age := p.Arrive.Sub(epoch)
		if age < 7*24*time.Hour {
			firstWeek++
		}
		if age > 28*24*time.Hour {
			lastWeek++
		}
	}
	if firstWeek <= 5*lastWeek {
		t.Fatalf("arrivals do not decay: first week %d, last week %d", firstWeek, lastWeek)
	}
}

func TestCountsEvolve(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	s0, l0, err := sw.Counts(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 || l0 != 0 {
		t.Fatalf("at birth: %d seeders %d leechers, want 0/0", s0, l0)
	}
	s1, l1, err := sw.Counts(epoch.Add(24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if s1+l1 == 0 {
		t.Fatal("swarm empty after a day at λ0=48/day")
	}
	if l1 == 0 {
		t.Fatal("no leechers after a day")
	}
}

func TestQueriesRejectGoingBackwards(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	if _, _, err := sw.Counts(epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Counts(epoch.Add(time.Minute)); err == nil {
		t.Fatal("backwards query accepted")
	}
}

func TestFakeSwarmNeverSeeds(t *testing.T) {
	p := defaultParams()
	p.Fake = true
	sw := newSwarm(t, p)
	if sw.TotalArrivals() == 0 {
		t.Fatal("fake swarm attracted nobody")
	}
	for _, peer := range sw.peers {
		if !peer.Complete.IsZero() {
			t.Fatal("fake downloader completed")
		}
		if stay := peer.Depart.Sub(peer.Arrive); stay > 90*time.Minute {
			t.Fatalf("fake downloader stayed %v, want < ~1h", stay)
		}
	}
	for step := time.Duration(0); step < 48*time.Hour; step += time.Hour {
		s, _, err := sw.Counts(epoch.Add(step))
		if err != nil {
			t.Fatal(err)
		}
		if s != 0 {
			t.Fatal("fake swarm has a non-publisher seeder")
		}
	}
}

func TestRemovalStopsArrivals(t *testing.T) {
	p := defaultParams()
	p.Removed = epoch.Add(12 * time.Hour)
	sw := newSwarm(t, p)
	for _, peer := range sw.peers {
		if peer.Arrive.After(p.Removed) {
			t.Fatalf("arrival %v after removal %v", peer.Arrive, p.Removed)
		}
	}
}

func TestPublisherPresence(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	pubIP := netip.MustParseAddr("11.0.0.7")
	iv := []Interval{
		{epoch, epoch.Add(10 * time.Hour)},
		{epoch.Add(20 * time.Hour), epoch.Add(30 * time.Hour)},
	}
	if err := sw.SetPublisherPresence(iv, []netip.Addr{pubIP, pubIP}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := sw.PeerByIP(epoch.Add(5*time.Hour), pubIP)
	if err != nil || !ok {
		t.Fatalf("publisher not found while seeding: ok=%v err=%v", ok, err)
	}
	if !m.Seeder || !m.Publisher || m.Progress != 1 {
		t.Fatalf("publisher state = %+v", m)
	}
	if _, ok, _ := sw.PeerByIP(epoch.Add(15*time.Hour), pubIP); ok {
		t.Fatal("publisher visible during offline gap")
	}
	if _, ok, _ := sw.PeerByIP(epoch.Add(25*time.Hour), pubIP); !ok {
		t.Fatal("publisher missing in second interval")
	}
}

func TestPublisherCountsAsSeeder(t *testing.T) {
	p := defaultParams()
	p.Lambda0 = 0 // empty swarm: only the publisher
	sw, err := New(p, rng.New(2, "empty"), &fakePool{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pubIP := netip.MustParseAddr("11.0.0.9")
	err = sw.SetPublisherPresence(
		[]Interval{{epoch, epoch.Add(time.Hour)}}, []netip.Addr{pubIP})
	if err != nil {
		t.Fatal(err)
	}
	s, l, err := sw.Counts(epoch.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 || l != 0 {
		t.Fatalf("counts = %d/%d, want 1 seeder 0 leechers", s, l)
	}
}

func TestSetPublisherPresenceValidation(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	ip := netip.MustParseAddr("11.0.0.1")
	if err := sw.SetPublisherPresence(
		[]Interval{{epoch, epoch.Add(time.Hour)}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	overlapping := []Interval{
		{epoch, epoch.Add(2 * time.Hour)},
		{epoch.Add(time.Hour), epoch.Add(3 * time.Hour)},
	}
	if err := sw.SetPublisherPresence(overlapping, []netip.Addr{ip, ip}); err == nil {
		t.Fatal("overlapping intervals accepted")
	}
}

func TestSampleBounded(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	s := rng.New(3, "sample")
	now := epoch.Add(48 * time.Hour)
	all, err := sw.Members(now)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw.Sample(now, 5, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > 5 && len(got) != 5 {
		t.Fatalf("sample size = %d, want 5 (population %d)", len(got), len(all))
	}
	seen := map[netip.Addr]bool{}
	for _, m := range got {
		if seen[m.IP] {
			t.Fatalf("duplicate in sample: %v", m.IP)
		}
		seen[m.IP] = true
	}
}

func TestSampleIsUniformish(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	s := rng.New(4, "uniform")
	now := epoch.Add(48 * time.Hour)
	all, err := sw.Members(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Skip("population too small for the distribution check")
	}
	hits := map[netip.Addr]int{}
	const rounds = 400
	for i := 0; i < rounds; i++ {
		sample, err := sw.Sample(now, len(all)/2, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sample {
			hits[m.IP]++
		}
	}
	// Every member should be picked roughly half the time.
	for ip, h := range hits {
		f := float64(h) / rounds
		if f < 0.3 || f > 0.7 {
			t.Fatalf("member %v sampled with frequency %v, want ~0.5", ip, f)
		}
	}
	if len(hits) != len(all) {
		t.Fatalf("only %d/%d members ever sampled", len(hits), len(all))
	}
}

func TestSeederIntervalsMatchCounts(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	ivs := sw.SeederIntervals(1)
	if len(ivs) == 0 {
		t.Fatal("no seeder intervals in a genuine swarm")
	}
	// Probing inside an interval must find >= 1 seeder; outside, 0.
	probe := ivs[0].Start.Add(ivs[0].Duration() / 2)
	s, _, err := sw.Counts(probe)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Fatalf("no seeder inside reported interval at %v", probe)
	}
}

func TestSeederIntervalsMinThreshold(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	loose := sw.SeederIntervals(1)
	tight := sw.SeederIntervals(5)
	total := func(ivs []Interval) time.Duration {
		var d time.Duration
		for _, iv := range ivs {
			d += iv.Duration()
		}
		return d
	}
	if total(tight) > total(loose) {
		t.Fatalf("5-seeder coverage (%v) exceeds 1-seeder coverage (%v)",
			total(tight), total(loose))
	}
}

func TestInjectedExtraPeers(t *testing.T) {
	p := defaultParams()
	p.Lambda0 = 0
	ip := netip.MustParseAddr("11.42.0.1")
	extra := []*Peer{{
		IP:     ip,
		Arrive: epoch.Add(time.Hour),
		Depart: epoch.Add(5 * time.Hour),
	}}
	sw, err := New(p, rng.New(5, "extra"), &fakePool{}, extra)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := sw.PeerByIP(epoch.Add(2*time.Hour), ip)
	if err != nil || !ok {
		t.Fatalf("extra peer not visible: %v %v", ok, err)
	}
	if m.Seeder {
		t.Fatal("extra leecher reported as seeder")
	}
}

func TestProgressSemantics(t *testing.T) {
	arrive := epoch
	complete := epoch.Add(4 * time.Hour)
	depart := epoch.Add(10 * time.Hour)
	p := &Peer{Arrive: arrive, Complete: complete, Depart: depart}
	if got := p.Progress(epoch.Add(2 * time.Hour)); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("mid-download progress = %v, want 0.5", got)
	}
	if got := p.Progress(epoch.Add(5 * time.Hour)); got != 1 {
		t.Fatalf("post-completion progress = %v, want 1", got)
	}
	if p.Progress(epoch.Add(11*time.Hour)) != 0 {
		t.Fatal("departed peer has progress")
	}
	aborter := &Peer{Arrive: arrive, Depart: epoch.Add(2 * time.Hour)}
	if got := aborter.Progress(epoch.Add(119 * time.Minute)); got > 0.95 {
		t.Fatalf("aborter progress = %v, want <= 0.95", got)
	}
}

func TestPeakConcurrentNonZero(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	if pk := sw.PeakConcurrent(); pk <= 0 {
		t.Fatalf("peak = %d", pk)
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	pool := &fakePool{}
	p := defaultParams()
	p.TauDays = 0
	if _, err := New(p, rng.New(1, "x"), pool, nil); err == nil {
		t.Fatal("tau=0 accepted")
	}
	p = defaultParams()
	p.Horizon = 0
	if _, err := New(p, rng.New(1, "x"), pool, nil); err == nil {
		t.Fatal("horizon=0 accepted")
	}
	p = defaultParams()
	p.Lambda0 = -1
	if _, err := New(p, rng.New(1, "x"), pool, nil); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

// Property: counts never go negative and members are consistent with counts
// at any sequence of forward probes.
func TestCountsMembersConsistencyProperty(t *testing.T) {
	sw := newSwarm(t, defaultParams())
	now := epoch
	f := func(stepMinutes uint16) bool {
		now = now.Add(time.Duration(stepMinutes%720) * time.Minute)
		s, l, err := sw.Counts(now)
		if err != nil {
			return false
		}
		ms, err := sw.Members(now)
		if err != nil {
			return false
		}
		gotSeeders := 0
		for _, m := range ms {
			if m.Seeder {
				gotSeeders++
			}
		}
		return s >= 0 && l >= 0 && len(ms) == s+l && gotSeeders == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: deterministic regeneration — same params and seed produce the
// same schedule.
func TestDeterministicGenerationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := defaultParams()
		a, err1 := New(p, rng.New(seed, "det"), &fakePool{}, nil)
		b, err2 := New(p, rng.New(seed, "det"), &fakePool{}, nil)
		if err1 != nil || err2 != nil || a.TotalArrivals() != b.TotalArrivals() {
			return false
		}
		for i := range a.peers {
			if !a.peers[i].Arrive.Equal(b.peers[i].Arrive) || a.peers[i].IP != b.peers[i].IP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
