package sessions

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)

func at(h float64) time.Time { return t0.Add(time.Duration(h * float64(time.Hour))) }

func TestDetectionProbabilityPaperNumbers(t *testing.T) {
	// Appendix A: N=165, W=50 -> m=13 queries give P > 0.99.
	p, err := DetectionProbability(50, 165, 13)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.99 {
		t.Fatalf("P(m=13) = %v, want > 0.99", p)
	}
	p12, err := DetectionProbability(50, 165, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p12 >= p {
		t.Fatal("P not increasing in m")
	}
}

func TestQueriesForConfidencePaperNumbers(t *testing.T) {
	m, err := QueriesForConfidence(50, 165, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if m != 13 {
		t.Fatalf("m = %d, want 13 (Appendix A)", m)
	}
}

func TestPaperThresholdIsAboutFourHours(t *testing.T) {
	th := PaperThreshold()
	// 13 queries * 18 minutes = 3.9h, the paper rounds to 4h.
	if th < 3*time.Hour+30*time.Minute || th > 4*time.Hour+30*time.Minute {
		t.Fatalf("threshold = %v, want ~4h", th)
	}
}

func TestDetectionProbabilityEdgeCases(t *testing.T) {
	if _, err := DetectionProbability(0, 10, 1); err == nil {
		t.Fatal("W=0 accepted")
	}
	if _, err := DetectionProbability(10, 0, 1); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := DetectionProbability(10, 10, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	p, err := DetectionProbability(200, 100, 1)
	if err != nil || p != 1 {
		t.Fatalf("W>=N should be certain, got %v %v", p, err)
	}
}

func TestQueriesForConfidenceEdgeCases(t *testing.T) {
	if _, err := QueriesForConfidence(50, 165, 0); err == nil {
		t.Fatal("confidence 0 accepted")
	}
	if _, err := QueriesForConfidence(50, 165, 1); err == nil {
		t.Fatal("confidence 1 accepted")
	}
	m, err := QueriesForConfidence(100, 50, 0.999)
	if err != nil || m != 1 {
		t.Fatalf("W>=N should need 1 query, got %d %v", m, err)
	}
}

// Property: P = 1-(1-W/N)^m is monotone in all three arguments.
func TestDetectionMonotoneProperty(t *testing.T) {
	f := func(w8, n8, m8 uint8) bool {
		w := int(w8%100) + 1
		n := w + int(n8%200) + 1
		m := int(m8%30) + 1
		p1, err1 := DetectionProbability(w, n, m)
		p2, err2 := DetectionProbability(w, n, m+1)
		p3, err3 := DetectionProbability(w+1, n, m)
		p4, err4 := DetectionProbability(w, n+1, m)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return p2 >= p1 && p3 >= p1 && p4 <= p1 && p1 > 0 && p1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: QueriesForConfidence inverts DetectionProbability.
func TestQueriesInversionProperty(t *testing.T) {
	f := func(w8, n8 uint8) bool {
		w := int(w8%100) + 1
		n := w + int(n8%200) + 2
		m, err := QueriesForConfidence(w, n, 0.99)
		if err != nil {
			return false
		}
		pm, _ := DetectionProbability(w, n, m)
		if pm < 0.99 {
			return false
		}
		if m > 1 {
			pPrev, _ := DetectionProbability(w, n, m-1)
			if pPrev >= 0.99 {
				return false // m not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStitchSingleSession(t *testing.T) {
	e := Estimator{Gap: 4 * time.Hour}
	ss := e.Stitch([]time.Time{at(0), at(0.3), at(1), at(2.5)})
	if len(ss) != 1 {
		t.Fatalf("sessions = %d, want 1", len(ss))
	}
	if !ss[0].Start.Equal(at(0)) || !ss[0].End.Equal(at(2.5)) {
		t.Fatalf("session = %+v", ss[0])
	}
}

func TestStitchSplitsOnGap(t *testing.T) {
	e := Estimator{Gap: 4 * time.Hour}
	ss := e.Stitch([]time.Time{at(0), at(1), at(9), at(10)})
	if len(ss) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ss))
	}
	if ss[0].Duration() != time.Hour || ss[1].Duration() != time.Hour {
		t.Fatalf("durations = %v, %v", ss[0].Duration(), ss[1].Duration())
	}
}

func TestStitchBoundaryGap(t *testing.T) {
	e := Estimator{Gap: 4 * time.Hour}
	// Exactly 4h apart: same session (gap must EXCEED threshold).
	ss := e.Stitch([]time.Time{at(0), at(4)})
	if len(ss) != 1 {
		t.Fatalf("4h gap split: %d sessions", len(ss))
	}
	ss = e.Stitch([]time.Time{at(0), at(4.01)})
	if len(ss) != 2 {
		t.Fatalf("4.01h gap not split: %d sessions", len(ss))
	}
}

func TestStitchUnsortedInput(t *testing.T) {
	e := Estimator{Gap: 4 * time.Hour}
	ss := e.Stitch([]time.Time{at(10), at(0), at(1), at(9)})
	if len(ss) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ss))
	}
}

func TestStitchEmpty(t *testing.T) {
	e := Estimator{Gap: time.Hour}
	if ss := e.Stitch(nil); ss != nil {
		t.Fatalf("empty stitch = %v", ss)
	}
}

func TestStitchMinSessionPadding(t *testing.T) {
	e := Estimator{Gap: 4 * time.Hour, MinSession: 15 * time.Minute}
	ss := e.Stitch([]time.Time{at(0)})
	if len(ss) != 1 || ss[0].Duration() != 15*time.Minute {
		t.Fatalf("padded session = %+v", ss)
	}
}

func TestStitchDefaultGapIsPaperThreshold(t *testing.T) {
	e := Estimator{} // zero gap -> paper threshold (~3.9h)
	ss := e.Stitch([]time.Time{at(0), at(3.8)})
	if len(ss) != 1 {
		t.Fatalf("3.8h gap split with default threshold: %d", len(ss))
	}
	ss = e.Stitch([]time.Time{at(0), at(5)})
	if len(ss) != 2 {
		t.Fatalf("5h gap not split with default threshold: %d", len(ss))
	}
}

func TestTotalDurationAndOverlap(t *testing.T) {
	ss := []Session{
		{at(0), at(2)},
		{at(10), at(11)},
	}
	if d := TotalDuration(ss); d != 3*time.Hour {
		t.Fatalf("total = %v", d)
	}
	if d := Overlap(ss, at(1), at(10.5)); d != 90*time.Minute {
		t.Fatalf("overlap = %v, want 1.5h", d)
	}
	if d := Overlap(ss, at(3), at(9)); d != 0 {
		t.Fatalf("disjoint overlap = %v", d)
	}
}

func TestMerge(t *testing.T) {
	ss := []Session{
		{at(5), at(7)},
		{at(0), at(2)},
		{at(1), at(3)},
		{at(6.5), at(6.8)},
	}
	merged := Merge(ss)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	if !merged[0].Start.Equal(at(0)) || !merged[0].End.Equal(at(3)) {
		t.Fatalf("merged[0] = %+v", merged[0])
	}
	if TotalDuration(merged) != 5*time.Hour {
		t.Fatalf("merged total = %v", TotalDuration(merged))
	}
	if Merge(nil) != nil {
		t.Fatal("empty merge")
	}
}

// Property: Merge yields disjoint sorted sessions covering the same span.
func TestMergeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var ss []Session
		for i := 0; i+1 < len(raw); i += 2 {
			start := float64(raw[i] % 100)
			dur := float64(raw[i+1]%20) + 0.1
			ss = append(ss, Session{at(start), at(start + dur)})
		}
		merged := Merge(ss)
		for i := 1; i < len(merged); i++ {
			if !merged[i].Start.After(merged[i-1].End) {
				return false
			}
		}
		return TotalDuration(merged) <= TotalDuration(ss)+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxParallelAndAvgParallel(t *testing.T) {
	perTorrent := [][]Session{
		{{at(0), at(10)}},
		{{at(2), at(6)}},
		{{at(4), at(5)}},
	}
	if got := MaxParallel(perTorrent); got != 3 {
		t.Fatalf("max parallel = %d, want 3", got)
	}
	// Union = 10h; integral = 10+4+1 = 15h -> avg 1.5.
	if got := AvgParallel(perTorrent); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("avg parallel = %v, want 1.5", got)
	}
	if MaxParallel(nil) != 0 || AvgParallel(nil) != 0 {
		t.Fatal("empty parallel stats != 0")
	}
}

func TestSessionEstimationRecoversGroundTruth(t *testing.T) {
	// A publisher seeds 0h-20h, offline 20h-30h, seeds 30h-50h.
	// The crawler sights it with 18-min queries and a 1/3 miss rate.
	truth := []Session{{at(0), at(20)}, {at(30), at(50)}}
	var sightings []time.Time
	miss := 0
	for q := 0.0; q < 50; q += 0.3 {
		inside := false
		for _, s := range truth {
			if !at(q).Before(s.Start) && at(q).Before(s.End) {
				inside = true
			}
		}
		if !inside {
			continue
		}
		miss++
		if miss%3 == 0 {
			continue // simulated sampling miss
		}
		sightings = append(sightings, at(q))
	}
	e := Estimator{Gap: 4 * time.Hour}
	got := e.Stitch(sightings)
	if len(got) != 2 {
		t.Fatalf("recovered %d sessions, want 2", len(got))
	}
	tol := time.Hour
	for i, s := range got {
		if s.Start.Sub(truth[i].Start) > tol || truth[i].End.Sub(s.End) > tol {
			t.Fatalf("session %d = %v..%v, truth %v..%v",
				i, s.Start, s.End, truth[i].Start, truth[i].End)
		}
	}
}
