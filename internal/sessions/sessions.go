// Package sessions implements the paper's Appendix A: estimating how long
// a peer (in particular a content publisher) stayed in a torrent from the
// random peer subsets the tracker returns.
//
// The tracker only ever reports a random W-sized subset of the N swarm
// members, so a present peer is missed by any single query with probability
// 1 - W/N. The paper models the probability of discovering a present peer
// within m consecutive queries as
//
//	P = 1 - (1 - W/N)^m
//
// and derives that, with the conservative N = 165, W = 50 and one query
// every 18 minutes, a present peer is seen within 4 hours with probability
// greater than 0.99. A peer whose address does not appear for longer than
// that gap is therefore considered offline, and its appearances are
// stitched into sessions separated by gaps above the threshold.
package sessions

import (
	"errors"
	"math"
	"sort"
	"time"
)

// DetectionProbability returns P = 1 - (1 - W/N)^m, the probability that a
// peer present in a torrent with N members appears in at least one of m
// tracker replies of W random members each. W >= N means certain detection.
func DetectionProbability(w, n, m int) (float64, error) {
	if w <= 0 || n <= 0 || m <= 0 {
		return 0, errors.New("sessions: W, N, m must be positive")
	}
	if w >= n {
		return 1, nil
	}
	return 1 - math.Pow(1-float64(w)/float64(n), float64(m)), nil
}

// QueriesForConfidence returns the smallest m with P >= confidence.
func QueriesForConfidence(w, n int, confidence float64) (int, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("sessions: confidence must be in (0,1)")
	}
	if w <= 0 || n <= 0 {
		return 0, errors.New("sessions: W and N must be positive")
	}
	if w >= n {
		return 1, nil
	}
	miss := 1 - float64(w)/float64(n)
	// (miss)^m <= 1-confidence  =>  m >= log(1-confidence)/log(miss)
	m := int(math.Ceil(math.Log(1-confidence) / math.Log(miss)))
	if m < 1 {
		m = 1
	}
	return m, nil
}

// PaperThreshold reproduces the Appendix A arithmetic: with the
// conservative parameters (N=165, W=50, 18 minutes between queries) the
// offline threshold comes out at ~4 hours for 0.99 confidence.
func PaperThreshold() time.Duration {
	m, err := QueriesForConfidence(50, 165, 0.99)
	if err != nil {
		panic("sessions: paper parameters invalid: " + err.Error())
	}
	return time.Duration(m) * 18 * time.Minute
}

// Session is one stitched presence interval.
type Session struct {
	Start time.Time
	End   time.Time
}

// Duration returns the session length; single-sighting sessions have zero
// duration before padding (see Estimator.MinSession).
func (s Session) Duration() time.Duration { return s.End.Sub(s.Start) }

// Estimator stitches discrete sightings into sessions.
type Estimator struct {
	// Gap is the offline threshold: sightings separated by more than Gap
	// start a new session. The paper uses 4h (and checks 2h/6h).
	Gap time.Duration
	// MinSession pads out sessions' duration to at least this value; a
	// single sighting proves presence at that instant, and the crawler's
	// query spacing bounds how much longer the peer could have stayed.
	// Zero keeps raw durations.
	MinSession time.Duration
}

// Stitch groups the sighting instants (any order, duplicates fine) into
// sessions under the estimator's gap rule.
func (e Estimator) Stitch(sightings []time.Time) []Session {
	if len(sightings) == 0 {
		return nil
	}
	ts := append([]time.Time(nil), sightings...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	return e.StitchSorted(ts)
}

// StitchSorted is Stitch for sightings already in ascending order — the
// analysis index walks time-ordered observation spans, so it skips the
// copy and sort. The input is not retained.
func (e Estimator) StitchSorted(ts []time.Time) []Session {
	if len(ts) == 0 {
		return nil
	}
	gap := e.Gap
	if gap <= 0 {
		gap = PaperThreshold()
	}
	var out []Session
	cur := Session{Start: ts[0], End: ts[0]}
	for _, t := range ts[1:] {
		if t.Sub(cur.End) > gap {
			out = append(out, cur)
			cur = Session{Start: t, End: t}
			continue
		}
		cur.End = t
	}
	out = append(out, cur)
	if e.MinSession > 0 {
		for i := range out {
			if out[i].Duration() < e.MinSession {
				out[i].End = out[i].Start.Add(e.MinSession)
			}
		}
	}
	return out
}

// TotalDuration sums session durations.
func TotalDuration(ss []Session) time.Duration {
	var d time.Duration
	for _, s := range ss {
		d += s.Duration()
	}
	return d
}

// Overlap computes how much of [start, end) is covered by the sessions.
func Overlap(ss []Session, start, end time.Time) time.Duration {
	var d time.Duration
	for _, s := range ss {
		lo := s.Start
		if lo.Before(start) {
			lo = start
		}
		hi := s.End
		if hi.After(end) {
			hi = end
		}
		if hi.After(lo) {
			d += hi.Sub(lo)
		}
	}
	return d
}

// MaxParallel computes the maximum number of interval sets simultaneously
// active: given per-torrent session lists for one publisher, it reports how
// many torrents the publisher was seeding at once at peak (Figure 4(b) uses
// the average; see AvgParallel).
func MaxParallel(perTorrent [][]Session) int {
	type ev struct {
		at    time.Time
		delta int
	}
	var evs []ev
	for _, ss := range perTorrent {
		for _, s := range ss {
			if s.End.After(s.Start) {
				evs = append(evs, ev{s.Start, +1}, ev{s.End, -1})
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].at.Equal(evs[j].at) {
			return evs[i].at.Before(evs[j].at)
		}
		return evs[i].delta < evs[j].delta
	})
	peak, cur := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// AvgParallel computes the time-averaged number of simultaneously seeded
// torrents over the union of the publisher's online time. Returns 0 when
// the publisher was never seen.
func AvgParallel(perTorrent [][]Session) float64 {
	var all []Session
	var weighted float64 // integral of count over time, in hours
	for _, ss := range perTorrent {
		for _, s := range ss {
			if s.End.After(s.Start) {
				all = append(all, s)
				weighted += s.Duration().Hours()
			}
		}
	}
	if len(all) == 0 {
		return 0
	}
	union := TotalDuration(Merge(all)).Hours()
	if union == 0 {
		return 0
	}
	return weighted / union
}

// Merge unions overlapping sessions into a disjoint, sorted set. Used for
// the aggregated session time of Figure 4(c).
func Merge(ss []Session) []Session {
	if len(ss) == 0 {
		return nil
	}
	cp := append([]Session(nil), ss...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Start.Before(cp[j].Start) })
	out := []Session{cp[0]}
	for _, s := range cp[1:] {
		last := &out[len(out)-1]
		if s.Start.After(last.End) {
			out = append(out, s)
			continue
		}
		if s.End.After(last.End) {
			last.End = s.End
		}
	}
	return out
}
