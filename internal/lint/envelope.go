package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Envelope guards the /api/v1 error contract from PR 5: every 4xx/5xx
// the server emits carries the one {"error":{code,message}} envelope.
// Handlers therefore must not call http.Error/http.NotFound or write
// error status codes themselves — only the designated helpers
// (writeError and the envelopeWriter middleware) touch WriteHeader.
var Envelope = &Analyzer{
	Name:  "envelope",
	Doc:   "lakeserve handlers emit errors only through the envelope helpers",
	Scope: []string{"btpub/internal/lakeserve"},
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if envelopeHelper(fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch {
					case isPkgFunc(p.Info, call, "net/http", "Error"):
						p.Reportf(call.Pos(), "http.Error bypasses the error envelope; use writeError/fail")
					case isPkgFunc(p.Info, call, "net/http", "NotFound"):
						p.Reportf(call.Pos(), "http.NotFound bypasses the error envelope; use writeError/fail")
					default:
						checkWriteHeader(p, call)
					}
					return true
				})
			}
		}
	},
}

// envelopeHelper reports whether the function is one of the designated
// envelope emitters: the writeError helper or any envelopeWriter
// method.
func envelopeHelper(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return fd.Name.Name == "writeError"
	}
	return recvTypeName(fd) == "envelopeWriter"
}

// checkWriteHeader flags WriteHeader calls outside the helpers: a
// constant status >= 400 is a definite envelope bypass, a non-constant
// status could be one, and both belong in the helpers.
func checkWriteHeader(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if code, exact := constant.Int64Val(tv.Value); exact && code < 400 {
			return // explicit 2xx/3xx is not an error path
		}
		p.Reportf(call.Pos(), "direct WriteHeader with an error status bypasses the envelope; use writeError/fail")
		return
	}
	p.Reportf(call.Pos(), "direct WriteHeader with a computed status: error statuses must go through writeError/fail")
}
