package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrFmtVerb guards error-chain integrity: wrapping an error with %v or
// %s flattens it to text, so errors.Is/As callers downstream (the lake's
// *CorruptError, the query engine's *VersionUnavailableError → 400
// mapping, os.IsNotExist checks) silently stop matching. fmt.Errorf
// must wrap error operands with %w.
var ErrFmtVerb = &Analyzer{
	Name: "errfmtverb",
	Doc:  "fmt.Errorf wraps error operands with %w, not %v/%s",
	Run: func(p *Pass) {
		errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Ellipsis.IsValid() || len(call.Args) < 2 {
					return true
				}
				if !isPkgFunc(p.Info, call, "fmt", "Errorf") {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok {
					return true
				}
				format, err := strconv.Unquote(lit.Value)
				if err != nil || strings.Contains(format, "%[") {
					// Explicit argument indexes would break the positional
					// mapping below; nothing in the tree uses them.
					return true
				}
				verbs := formatVerbs(format)
				for i, verb := range verbs {
					argIdx := 1 + i
					if argIdx >= len(call.Args) || verb == 'w' {
						continue
					}
					if verb != 'v' && verb != 's' {
						continue
					}
					tv, ok := p.Info.Types[call.Args[argIdx]]
					if !ok || tv.Type == nil {
						continue
					}
					if types.Implements(tv.Type, errIface) || types.Implements(types.NewPointer(tv.Type), errIface) {
						p.Reportf(call.Args[argIdx].Pos(), "error operand formatted with %%%c: use %%w so errors.Is/As keep working on the chain", verb)
					}
				}
				return true
			})
		}
	},
}

// formatVerbs returns one verb rune per consumed operand, in order.
// `*` width/precision arguments consume an operand and appear as '*'.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	verb:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break verb // literal %%
			case c == '*':
				verbs = append(verbs, '*')
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9'):
				// flags, width, precision: keep scanning
			default:
				verbs = append(verbs, rune(c))
				break verb
			}
		}
	}
	return verbs
}
