package lint

import (
	"go/ast"
)

// vfsBanned are the package-level os functions that touch the
// filesystem. Error predicates (os.IsNotExist), constants and types are
// deliberately absent: the invariant is about I/O, not about error
// classification.
var vfsBanned = map[string]bool{
	"Chmod": true, "Chown": true, "Chtimes": true,
	"Create": true, "CreateTemp": true, "DirFS": true,
	"Link": true, "Lstat": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Open": true, "OpenFile": true, "OpenRoot": true,
	"ReadDir": true, "ReadFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Stat": true, "Symlink": true, "Truncate": true,
	"WriteFile": true,
}

// VFSOnly guards the lake's crash-safety seam: every filesystem
// operation in internal/lake must go through vfs.FS (lake.Options.FS),
// or the faultfs kill-point torture silently stops covering it.
var VFSOnly = &Analyzer{
	Name:  "vfsonly",
	Doc:   "lake code must do filesystem I/O through vfs.FS, never os directly",
	Scope: []string{"btpub/internal/lake"},
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(p.Info, call); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "os" && vfsBanned[fn.Name()] {
					p.Reportf(call.Pos(), "direct os.%s bypasses vfs.FS; route it through Options.FS so fault injection covers it", fn.Name())
				}
				return true
			})
		}
	},
}
