package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader is shared so compiled export data of the standard
// library is listed once per test process, not once per fixture.
var fixtureLoader = NewLoader("")

// wantRe matches the golden annotations: a trailing
//
//	// want `regexp`
//
// on the offending line.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// checkFixture loads one testdata package, runs a single analyzer over
// it (under a synthetic import path so scoped analyzers apply), and
// compares the findings line-for-line against the `// want` comments.
func checkFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := fixtureLoader.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg.ImportPath = importPath
	if !a.InScope(importPath) {
		t.Fatalf("analyzer %s does not apply to %s; fixture would test nothing", a.Name, importPath)
	}

	got := map[string][]Finding{} // "file:line" -> findings
	for _, f := range Check(pkg, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		got[key] = append(got[key], f)
	}

	matched := map[string]bool{}
	for _, name := range pkg.Filenames {
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(buf), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", filepath.Base(name), i+1)
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
			}
			found := false
			for _, f := range got[key] {
				if re.MatchString(f.Message) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: want finding matching %q, got %v", key, m[1], got[key])
			}
			matched[key] = true
		}
	}
	for key, fs := range got {
		if !matched[key] {
			for _, f := range fs {
				t.Errorf("%s: unexpected finding: %s", key, f.Message)
			}
		}
	}
}

func TestVFSOnlyFixture(t *testing.T) {
	checkFixture(t, VFSOnly, "vfsonly", "btpub/internal/lake/fixture")
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, Determinism, "determinism", "btpub/internal/ecosystem/fixture")
}

func TestNoBgCtxFixture(t *testing.T) {
	checkFixture(t, NoBgCtx, "nobgctx", "btpub/internal/lakeserve/fixture")
}

func TestNoBgCtxMainFixture(t *testing.T) {
	checkFixture(t, NoBgCtx, "nobgctxmain", "btpub/cmd/fixture")
}

func TestEnvelopeFixture(t *testing.T) {
	checkFixture(t, Envelope, "envelope", "btpub/internal/lakeserve/fixture")
}

func TestErrFmtVerbFixture(t *testing.T) {
	checkFixture(t, ErrFmtVerb, "errfmtverb", "btpub/internal/lake/fixture")
}

// TestScope pins the driver-side scoping: a vfsonly finding in a
// package outside internal/lake would be a false positive, and an
// out-of-scope analyzer must simply not run.
func TestScope(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		in       bool
	}{
		{VFSOnly, "btpub/internal/lake", true},
		{VFSOnly, "btpub/internal/lake/journal", true},
		{VFSOnly, "btpub/internal/lakeserve", false},
		{VFSOnly, "btpub/internal/vfs/faultfs", false},
		{Determinism, "btpub/internal/campaign", true},
		{Determinism, "btpub/internal/crawler", true},
		{Determinism, "btpub/internal/rng", false},
		{Determinism, "btpub/internal/simclock", false},
		{Envelope, "btpub/internal/lakeserve", true},
		{Envelope, "btpub/internal/lake", false},
		{NoBgCtx, "btpub/cmd/btpub-serve", true},
		{ErrFmtVerb, "btpub/internal/bencode", true},
	}
	for _, c := range cases {
		if got := c.analyzer.InScope(c.path); got != c.in {
			t.Errorf("%s.InScope(%s) = %v, want %v", c.analyzer.Name, c.path, got, c.in)
		}
	}
}
