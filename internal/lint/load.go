package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Filenames  []string // absolute paths of the non-test Go files
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader loads and type-checks packages using only the standard
// library: `go list -export -deps -json` supplies the file lists and
// the compiled export data of every dependency, so only the target
// packages themselves are type-checked from source. Test files are
// never loaded — every invariant in the suite is about production code.
type Loader struct {
	// Dir is the working directory for go commands ("" = current).
	Dir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	modDir  string
	modPath string
	imp     types.ImporterFrom
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = &exportImporter{l: l, gc: importer.ForCompiler(l.fset, "gc", l.lookup)}
	return l
}

// ModuleDir returns the directory of the main module, known after the
// first Load call.
func (l *Loader) ModuleDir() string { return l.modDir }

// ModulePath returns the main module path, known after the first Load
// call.
func (l *Loader) ModulePath() string { return l.modPath }

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// exportImporter resolves imports from compiled export data, with the
// one special case the gc importer does not own.
type exportImporter struct {
	l  *Loader
	gc types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path, Dir string }
}

const listFields = "ImportPath,Dir,Name,Export,GoFiles,DepOnly,Standard,Module"

func (l *Loader) goList(extra []string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json=" + listFields}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", args[0], err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists the patterns with their full dependency closure, records
// every dependency's export data, and type-checks each matched package
// from source. Returned packages are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	pkgs, err := l.goList([]string{"-export", "-deps"}, patterns)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && l.modDir == "" {
			l.modDir, l.modPath = p.Module.Dir, p.Module.Path
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := l.check(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package in dir (which may live under a
// testdata tree, invisible to go list patterns). The imports of its
// files are resolved by listing them with -export first; they must be
// standard-library or main-module packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Parse first so the import set is known, then fetch export data for
	// any import not already cached.
	parsed, absFiles, err := l.parse(dir, files)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, f := range parsed {
		for _, im := range f.Imports {
			path, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				continue
			}
			if path != "unsafe" && l.exports[path] == "" {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		missing = compact(missing)
		deps, err := l.goList([]string{"-export", "-deps"}, missing)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
	}
	return l.typecheck("fixture/"+filepath.Base(dir), dir, parsed, absFiles)
}

func compact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	parsed, abs, err := l.parse(dir, files)
	if err != nil {
		return nil, err
	}
	return l.typecheck(importPath, dir, parsed, abs)
}

func (l *Loader) parse(dir string, files []string) ([]*ast.File, []string, error) {
	parsed := make([]*ast.File, 0, len(files))
	abs := make([]string, 0, len(files))
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		parsed = append(parsed, f)
		abs = append(abs, path)
	}
	return parsed, abs, nil
}

func (l *Loader) typecheck(importPath, dir string, parsed []*ast.File, files []string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Filenames:  files,
		Fset:       l.fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
	}, nil
}
