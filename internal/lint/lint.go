// Package lint is btpub's custom analyzer suite: it mechanizes the
// invariants the repo otherwise enforces only by convention and by
// after-the-fact tests. See doc.go for the catalogue of analyzers and
// cmd/btpub-vet for the driver (standalone or via go vet -vettool).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"sort"
	"strings"
)

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic: which analyzer fired, where, and why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form. The file is
// whatever the loader recorded (absolute for module loads); the driver
// rewrites it module-relative before printing.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in allowlist entries and diagnostics.
	Name string
	// Doc is the one-line invariant the analyzer guards.
	Doc string
	// Scope restricts the analyzer to packages whose import path matches
	// one of these prefixes (a prefix matches itself and any subpackage).
	// Empty means every package.
	Scope []string
	Run   func(*Pass)
}

// InScope reports whether the analyzer applies to the package.
func (a *Analyzer) InScope(importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, pre := range a.Scope {
		if importPath == pre || strings.HasPrefix(importPath, pre+"/") {
			return true
		}
	}
	return false
}

// All is the suite, in the order findings are attributed.
var All = []*Analyzer{VFSOnly, Determinism, NoBgCtx, Envelope, ErrFmtVerb}

// ByName resolves an analyzer, for allowlist validation.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs every in-scope analyzer of the suite over the package and
// returns the findings sorted by position. Findings in _test.go files
// are dropped: every invariant in the suite is about production code
// (tests may pin wall clocks, own root contexts, or poke the real FS at
// will), and test files only reach an analyzer under go vet -vettool,
// which feeds test variants the standalone loader never lists.
func Check(pkg *Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		if !a.InScope(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			findings: &out,
		}
		a.Run(pass)
	}
	out = slices.DeleteFunc(out, func(f Finding) bool {
		return strings.HasSuffix(f.Pos.Filename, "_test.go")
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ---------------------------------------------------------------------
// Shared AST/type helpers
// ---------------------------------------------------------------------

// calleeFunc resolves a call expression to the package-level function it
// invokes, or nil (method values, conversions, locals, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether the call invokes pkgPath.name (a top-level
// function; import renames are resolved through the type info).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// enclosingFuncDecl returns the top-level function declaration whose
// body spans pos, or nil (package-level var initializers and such).
// Function literals resolve to the declaration they appear inside.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
				return fd
			}
		}
	}
	return nil
}

// recvTypeName returns the name of a method's receiver type ("" for
// plain functions), with any pointer stripped.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
