package lint

import (
	"go/ast"
)

// NoBgCtx guards the bug class PR 7 fixed in refreshAsync: a background
// goroutine on context.Background() outlives its owner and keeps
// running after shutdown. Fresh root contexts belong in main (or its
// conventional `run` wrapper); everything else should thread a caller's
// context or derive a lifecycle context that something cancels — and
// the rare deliberate root carries an allowlist entry saying why.
var NoBgCtx = &Analyzer{
	Name: "nobgctx",
	Doc:  "no context.Background/TODO outside main (and run) in package main",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := ""
				switch {
				case isPkgFunc(p.Info, call, "context", "Background"):
					name = "Background"
				case isPkgFunc(p.Info, call, "context", "TODO"):
					name = "TODO"
				default:
					return true
				}
				if p.Pkg.Name() == "main" {
					if fd := enclosingFuncDecl(p.Files, call.Pos()); fd != nil && fd.Recv == nil &&
						(fd.Name.Name == "main" || fd.Name.Name == "run") {
						return true
					}
				}
				p.Reportf(call.Pos(), "context.%s outside main: thread the caller's context (or a cancellable lifecycle context) instead", name)
				return true
			})
		}
	},
}
