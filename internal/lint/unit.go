package lint

import (
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// CheckUnit type-checks one package the way a go vet -vettool
// invocation describes it: source files plus the import→export-data
// maps from the vet config. Test files the go command includes in a
// package unit are analyzed like any other file there; the suite's
// test exemption comes from the standalone loader, which never lists
// them.
func CheckUnit(importPath, dir string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q in vet config", path)
		}
		return os.Open(f)
	}
	gc := importer.ForCompiler(l.fset, "gc", lookup)
	l.imp = &exportImporter{l: l, gc: gc}

	parsed, abs, err := l.parse(dir, goFiles)
	if err != nil {
		return nil, err
	}
	return l.typecheck(importPath, dir, parsed, abs)
}
