package lint

import (
	"fmt"
	"os"
	"path/filepath"
)

// RunResult is the outcome of a standalone suite run.
type RunResult struct {
	// Findings are the unsuppressed diagnostics, with filenames
	// rewritten slash-separated and module-relative.
	Findings []Finding
	// Raw is every diagnostic before allowlist filtering (same findings
	// as Findings when no allowlist applies).
	Raw []Finding
	// Stale are allowlist entries that suppressed nothing even though
	// their file was analyzed.
	Stale []*AllowEntry
	// Allow is the parsed allowlist, nil when none applied.
	Allow *Allowlist
}

// Ok reports a clean run: nothing to print, exit 0.
func (r *RunResult) Ok() bool { return len(r.Findings) == 0 && len(r.Stale) == 0 }

// Run loads the patterns from dir (""=cwd), applies the whole suite,
// and filters through the allowlist file (""=none). It is the
// standalone btpub-vet engine, callable from tests.
func Run(dir string, patterns []string, allowFile string) (*RunResult, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	modDir := loader.ModuleDir()
	if modDir == "" {
		return nil, fmt.Errorf("lint: patterns matched no module packages")
	}

	analyzed := map[string]bool{}
	var raw []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Filenames {
			analyzed[moduleRel(modDir, f)] = true
		}
		for _, f := range Check(pkg, All) {
			f.Pos.Filename = moduleRel(modDir, f.Pos.Filename)
			raw = append(raw, f)
		}
	}

	res := &RunResult{Raw: raw, Findings: raw}
	if allowFile != "" {
		al, err := ParseAllowlist(allowFile)
		if err != nil {
			return nil, err
		}
		res.Allow = al
		res.Findings = al.Filter(raw)
		res.Stale = al.Stale(analyzed)
	}
	return res, nil
}

// DefaultAllowFile returns the checked-in allowlist path under the
// module that owns dir, or "" when none exists yet. The module root is
// found by walking up to go.mod, so no go command runs before the
// driver decides its flags.
func DefaultAllowFile(dir string) string {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			f := filepath.Join(d, "ci", "lint-allow.txt")
			if _, err := os.Stat(f); err == nil {
				return f
			}
			return ""
		}
		if filepath.Dir(d) == d {
			return ""
		}
	}
}

func moduleRel(modDir, file string) string {
	if rel, err := filepath.Rel(modDir, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
