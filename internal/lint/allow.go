package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// AllowEntry grandfathers every finding of one analyzer in one file.
type AllowEntry struct {
	// Path is the file, slash-separated and relative to the module root
	// (e.g. internal/crawler/inprocess.go).
	Path string
	// Analyzer names the suppressed analyzer.
	Analyzer string
	// Reason is the mandatory justification after " # ".
	Reason string
	// Line is the 1-based line in the allowlist file.
	Line int

	used bool
}

// Allowlist is a parsed ci/lint-allow.txt.
type Allowlist struct {
	File    string
	Entries []*AllowEntry
}

// ParseAllowlist reads an allowlist: one `path:analyzer # reason` per
// line, '#'-led lines and blanks ignored. Unknown analyzers, missing
// reasons and duplicate entries are hard errors — a typo here would
// silently suppress nothing (or everything).
func ParseAllowlist(file string) (*Allowlist, error) {
	buf, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{File: file}
	seen := map[string]int{}
	for i, line := range strings.Split(string(buf), "\n") {
		no := i + 1
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pattern, reason, ok := strings.Cut(line, "#")
		if !ok || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a `# reason`", file, no)
		}
		pattern = strings.TrimSpace(pattern)
		path, analyzer, ok := strings.Cut(pattern, ":")
		if !ok || path == "" || analyzer == "" {
			return nil, fmt.Errorf("%s:%d: want `path:analyzer # reason`, got %q", file, no, line)
		}
		if ByName(analyzer) == nil {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q", file, no, analyzer)
		}
		if filepath.IsAbs(path) || strings.Contains(path, `\`) {
			return nil, fmt.Errorf("%s:%d: path must be slash-separated and module-relative, got %q", file, no, path)
		}
		if prev, dup := seen[pattern]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate of line %d", file, no, prev)
		}
		seen[pattern] = no
		al.Entries = append(al.Entries, &AllowEntry{
			Path: path, Analyzer: analyzer,
			Reason: strings.TrimSpace(reason), Line: no,
		})
	}
	return al, nil
}

// Filter drops findings covered by the allowlist and returns the rest.
// Finding filenames must already be module-relative (slash-separated);
// matched entries are marked used for the Stale pass.
func (al *Allowlist) Filter(findings []Finding) []Finding {
	if al == nil {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		if e := al.match(f); e != nil {
			e.used = true
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func (al *Allowlist) match(f Finding) *AllowEntry {
	for _, e := range al.Entries {
		if e.Analyzer == f.Analyzer && e.Path == f.Pos.Filename {
			return e
		}
	}
	return nil
}

// Stale returns the entries that matched nothing in the preceding
// Filter calls even though their file was analyzed: the grandfathered
// debt they recorded is gone and the entry must go too, or it would
// mask the next regression in that file. Entries whose file was not
// part of this run (partial pattern) are not judged.
func (al *Allowlist) Stale(analyzedFiles map[string]bool) []*AllowEntry {
	if al == nil {
		return nil
	}
	var stale []*AllowEntry
	for _, e := range al.Entries {
		if !e.used && analyzedFiles[e.Path] {
			stale = append(stale, e)
		}
	}
	return stale
}
