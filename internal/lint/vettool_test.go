package lint

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolProtocol builds cmd/btpub-vet and drives it through the
// real go command (`go vet -vettool=...`), which speaks the unitchecker
// protocol: a -V=full version probe, a -flags probe, then one JSON
// config per package. A clean package must pass; a package with
// grandfathered debt must fail with the expected diagnostics (the
// allowlist is standalone-only, so the debt is visible here).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet in -short mode")
	}
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "btpub-vet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/btpub-vet")
	build.Dir = modRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pattern)
		cmd.Dir = modRoot
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	if out, err := vet("./internal/rng"); err != nil {
		t.Errorf("go vet on clean package failed: %v\n%s", err, out)
	}

	out, err := vet("./internal/crawler")
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("go vet on grandfathered package: err = %v, want exit error\n%s", err, out)
	}
	for _, want := range []string{
		"inprocess.go:", "time.Now in sim code", "[determinism]",
		"crawler.go:", "[nobgctx]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "_test.go:") {
		t.Errorf("go vet flagged a _test.go file; tests are out of every analyzer's scope:\n%s", out)
	}
}
