package lint

import (
	"testing"
)

// TestTreeCompliance is the gate the issue asks for: the suite runs
// over the whole module and comes back clean, and every allowlist
// entry is still load-bearing — deleting any line would resurface a
// real finding, so none can rot in place.
func TestTreeCompliance(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck in -short mode")
	}
	res, err := Run("", []string{"btpub/..."}, "../../ci/lint-allow.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	for _, e := range res.Stale {
		t.Errorf("stale allowlist entry: %s:%s (line %d)", e.Path, e.Analyzer, e.Line)
	}
	if len(res.Allow.Entries) == 0 {
		t.Fatal("allowlist parsed empty; expected the grandfathered entries")
	}
	for _, e := range res.Allow.Entries {
		n := 0
		for _, f := range res.Raw {
			if f.Analyzer == e.Analyzer && f.Pos.Filename == e.Path {
				n++
			}
		}
		if n == 0 {
			t.Errorf("allowlist entry %s:%s suppresses nothing; delete it", e.Path, e.Analyzer)
		}
	}
}
