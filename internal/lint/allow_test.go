package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeAllow(t *testing.T, content string) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "lint-allow.txt")
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func finding(analyzer, file string, line int) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  "msg",
	}
}

func TestAllowlistParseErrors(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"missing reason", "internal/lake/lake.go:vfsonly\n", "needs a `# reason`"},
		{"empty reason", "internal/lake/lake.go:vfsonly #   \n", "needs a `# reason`"},
		{"unknown analyzer", "internal/lake/lake.go:nosuch # why\n", `unknown analyzer "nosuch"`},
		{"no analyzer", "internal/lake/lake.go # why\n", "want `path:analyzer # reason`"},
		{"absolute path", "/internal/lake/lake.go:vfsonly # why\n", "module-relative"},
		{"duplicate", "a.go:vfsonly # one\na.go:vfsonly # two\n", "duplicate of line 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseAllowlist(writeAllow(t, c.content))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestAllowlistFilterAndStale(t *testing.T) {
	al, err := ParseAllowlist(writeAllow(t, strings.Join([]string{
		"# comment line",
		"",
		"internal/a/a.go:determinism # wall-clock seam",
		"internal/b/b.go:nobgctx # lifecycle root",
		"internal/gone/gone.go:envelope # debt that no longer exists",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(al.Entries))
	}

	findings := []Finding{
		finding("determinism", "internal/a/a.go", 10), // suppressed
		finding("determinism", "internal/a/a.go", 20), // suppressed (same entry)
		finding("nobgctx", "internal/a/a.go", 30),     // wrong analyzer: kept
		finding("determinism", "internal/c/c.go", 5),  // wrong file: kept
	}
	kept := al.Filter(findings)
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Pos.Filename != "internal/a/a.go" || kept[0].Analyzer != "nobgctx" {
		t.Errorf("kept[0] = %v", kept[0])
	}
	if kept[1].Pos.Filename != "internal/c/c.go" {
		t.Errorf("kept[1] = %v", kept[1])
	}

	// An entry that suppressed nothing even though its file was analyzed
	// is stale. b.go was outside this run's patterns, so its unused entry
	// is not judged.
	analyzed := map[string]bool{
		"internal/a/a.go":       true,
		"internal/c/c.go":       true,
		"internal/gone/gone.go": true,
	}
	stale := al.Stale(analyzed)
	if len(stale) != 1 || stale[0].Path != "internal/gone/gone.go" {
		t.Fatalf("stale = %v, want exactly the internal/gone/gone.go entry", stale)
	}
}
