package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Determinism guards byte-identical sharded campaigns: simulation
// packages take time from simclock (a Sim clock in sim runs, the Real
// seam where wall-clock is deliberate), randomness from rng.Labeled
// streams, and must not let Go's random map iteration order leak into
// output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "sim packages: no time.Now, no math/rand, no map-iteration-ordered output",
	Scope: []string{
		"btpub/internal/campaign",
		"btpub/internal/crawler",
		"btpub/internal/ecosystem",
		"btpub/internal/population",
		"btpub/internal/portal",
		"btpub/internal/swarm",
	},
	Run: runDeterminism,
}

// wallClock are the time functions that read the machine clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, im := range f.Imports {
			if path, err := strconv.Unquote(im.Path.Value); err == nil &&
				(path == "math/rand" || path == "math/rand/v2") {
				p.Reportf(im.Pos(), "import of %s in sim code: derive randomness from rng.Labeled streams so sharded runs stay byte-identical", path)
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(p.Info, n); fn != nil &&
						fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClock[fn.Name()] {
						p.Reportf(n.Pos(), "time.%s in sim code: take time from the simclock.Clock seam", fn.Name())
					}
				case *ast.RangeStmt:
					checkMapRange(p, fd, n)
				}
				return true
			})
		}
	}
}

// checkMapRange flags a range over a map whose iteration order can leak
// into output: printing/writing inside the loop body, or appending to
// an outer slice that is never sorted afterwards in the same function.
// Iterating to build another map, to sum, or to collect-then-sort is
// the legal pattern.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := p.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					p.Reportf(n.Pos(), "fmt.%s inside map iteration: order is random; collect and sort before emitting", fn.Name())
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(p, fd, rs, n)
		}
		return true
	})
}

// checkMapRangeAppend handles `s = append(s, ...)` inside a map range:
// fine if s is sorted later in the function, a finding otherwise.
func checkMapRangeAppend(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	obj := p.Info.ObjectOf(lhs)
	if obj == nil || obj.Pos() >= rs.Pos() {
		// Declared inside the loop: its scope ends with the iteration, the
		// order cannot leak out through it.
		return
	}
	if sortedAfter(p, fd, obj, rs.End()) {
		return
	}
	p.Reportf(as.Pos(), "append to %s inside map iteration without a later sort: result order is random", lhs.Name)
}

// sortedAfter reports whether obj is passed to a sort/slices function
// after pos within the declaration.
func sortedAfter(p *Pass, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
