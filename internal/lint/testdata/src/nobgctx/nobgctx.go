// Fixture for the nobgctx analyzer in library code: every fresh root
// context is a finding; threading the caller's context, or deriving a
// cancellable lifecycle context from an injected one, is the legal
// pattern.
package fixture

import "context"

type store interface {
	Refresh(ctx context.Context) error
}

// refreshDetached is the PR 7 bug class: the rebuild outlives whoever
// asked for it because nothing can cancel the fresh root.
func refreshDetached(s store) error {
	go func() {
		_ = s.Refresh(context.Background()) // want `context\.Background outside main`
	}()
	return s.Refresh(context.TODO()) // want `context\.TODO outside main`
}

// refreshOwned is the legal pattern: the context is the caller's, and
// background work derives a cancellable child from it.
func refreshOwned(ctx context.Context, s store) error {
	bg, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		_ = s.Refresh(bg)
	}()
	return s.Refresh(ctx)
}
