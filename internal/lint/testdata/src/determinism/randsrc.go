package fixture

import (
	"math/rand"           // want `import of math/rand in sim code`
	randv2 "math/rand/v2" // want `import of math/rand/v2 in sim code`
)

// Stream mirrors the rng.Labeled seam: randomness arrives as derived
// streams, never from the global generators.
type Stream interface {
	Uint64() uint64
}

func globalRand() int {
	return rand.Intn(10) + int(randv2.Uint64()%10)
}

// seamRand is the legal pattern.
func seamRand(s Stream) uint64 {
	return s.Uint64()
}
