package fixture

import (
	"fmt"
	"io"
	"sort"
)

// emitUnsorted lets map iteration order reach the output stream.
func emitUnsorted(w io.Writer, counts map[string]int) {
	for name, n := range counts {
		fmt.Fprintf(w, "%s %d\n", name, n) // want `fmt\.Fprintf inside map iteration`
	}
}

// collectUnsorted leaks iteration order through the returned slice.
func collectUnsorted(counts map[string]int) []string {
	var names []string
	for name := range counts {
		names = append(names, name) // want `append to names inside map iteration without a later sort`
	}
	return names
}

// collectSorted is the legal pattern: collect, then sort, then emit.
func collectSorted(w io.Writer, counts map[string]int) {
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, counts[name])
	}
}

// aggregate never exposes order: reductions and map-to-map rebuilds are
// order-independent.
func aggregate(counts map[string]int) (int, map[string]bool) {
	total := 0
	seen := make(map[string]bool, len(counts))
	for name, n := range counts {
		total += n
		seen[name] = true
		scratch := []string{name}
		scratch = append(scratch, name) // loop-local: order cannot escape
		_ = scratch
	}
	return total, seen
}
