// Fixture for the determinism analyzer's wall-clock rule: reading the
// machine clock is a finding; taking time from an injected clock seam
// is the legal pattern.
package fixture

import "time"

// Clock mirrors simclock.Clock, the seam sim code must read time from.
type Clock interface {
	Now() time.Time
}

func wallClock(deadline time.Time) bool {
	now := time.Now()             // want `time\.Now in sim code`
	if time.Since(deadline) > 0 { // want `time\.Since in sim code`
		return true
	}
	_ = time.Until(deadline) // want `time\.Until in sim code`
	return now.After(deadline)
}

// simTime is the legal pattern: the clock is injected, durations and
// explicit instants are fine.
func simTime(c Clock, deadline time.Time) bool {
	now := c.Now()
	grace := 10 * time.Minute
	return now.Add(grace).After(deadline)
}
