// Fixture for the errfmtverb analyzer: error operands stringified with
// %v/%s are findings (the chain is flattened, errors.Is/As stop
// matching); %w wrapping is the legal pattern, and non-error operands
// may use any verb.
package fixture

import (
	"errors"
	"fmt"
)

// CorruptError mirrors the lake's typed errors that must survive
// wrapping.
type CorruptError struct{ File string }

func (e *CorruptError) Error() string { return "corrupt: " + e.File }

var errSentinel = errors.New("sentinel")

func flattened(err error, ce *CorruptError, n int) error {
	if err != nil {
		return fmt.Errorf("scan: %v", err) // want `error operand formatted with %v`
	}
	if ce != nil {
		return fmt.Errorf("segment %d: %s", n, ce) // want `error operand formatted with %s`
	}
	return fmt.Errorf("pad %*d then %v", 8, n, errSentinel) // want `error operand formatted with %v`
}

// wrapped is the legal pattern: %w keeps the chain intact, and plain
// values keep their verbs.
func wrapped(err error, ce *CorruptError, name string, n int) error {
	if err != nil {
		return fmt.Errorf("scan %s (attempt %d): %w", name, n, err)
	}
	if ce != nil {
		return fmt.Errorf("segment: %w", ce)
	}
	return fmt.Errorf("%s: %d%% done", name, n)
}
