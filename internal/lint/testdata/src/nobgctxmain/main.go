// Fixture for the nobgctx analyzer in package main: the process
// entry points main and its conventional run wrapper own fresh root
// contexts (including inside their function literals); helpers must
// still take a context from their caller.
package main

import "context"

func main() {
	ctx := context.Background()
	go func() {
		use(context.Background())
	}()
	use(ctx)
	helper()
}

func run() error {
	use(context.Background())
	return nil
}

func helper() {
	use(context.Background()) // want `context\.Background outside main`
}

func use(ctx context.Context) { _ = ctx }

var _ = run
