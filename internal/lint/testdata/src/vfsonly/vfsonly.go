// Fixture for the vfsonly analyzer: direct os filesystem calls are
// findings; the same operations through an injected FS seam, and os
// error predicates, are the legal pattern.
package fixture

import (
	"io/fs"
	"os"
	"path/filepath"
)

// FS mirrors the shape of vfs.FS: the seam every lake I/O call must go
// through so fault injection covers it.
type FS interface {
	Create(name string) (*os.File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
}

func writeDirect(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os\.MkdirAll bypasses vfs\.FS`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "seg-000001.obs")) // want `direct os\.Create bypasses vfs\.FS`
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := os.ReadFile(filepath.Join(dir, "MANIFEST")); err != nil { // want `direct os\.ReadFile bypasses vfs\.FS`
		return err
	}
	if err := os.Rename("a", "b"); err != nil { // want `direct os\.Rename bypasses vfs\.FS`
		return err
	}
	if _, err := os.Stat(dir); err != nil { // want `direct os\.Stat bypasses vfs\.FS`
		return err
	}
	return os.Remove(dir) // want `direct os\.Remove bypasses vfs\.FS`
}

// writeSeam is the legal pattern: every operation goes through the
// injected seam, and os is only consulted for error classification.
func writeSeam(fsys FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fsys.Create(filepath.Join(dir, "seg-000001.obs"))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fsys.ReadFile(filepath.Join(dir, "MANIFEST"))
	if os.IsNotExist(err) { // error predicate, not I/O: allowed
		return nil
	}
	return err
}
