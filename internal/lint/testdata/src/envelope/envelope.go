// Fixture for the envelope analyzer: handlers writing error statuses
// directly are findings; the designated helpers (writeError and the
// envelopeWriter middleware) and explicit success statuses are legal.
package fixture

import (
	"encoding/json"
	"net/http"
)

type errorBody struct {
	Error string `json:"error"`
}

// writeError is the designated envelope emitter; its WriteHeader is
// exempt by name.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// envelopeWriter mirrors the lakeserve middleware; its methods are
// exempt by receiver type.
type envelopeWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *envelopeWriter) WriteHeader(code int) {
	if code >= 400 {
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)  // want `http\.Error bypasses the error envelope`
	http.NotFound(w, r)                           // want `http\.NotFound bypasses the error envelope`
	w.WriteHeader(http.StatusInternalServerError) // want `direct WriteHeader with an error status`
	status := pick(r)
	w.WriteHeader(status) // want `direct WriteHeader with a computed status`
}

// handleGood is the legal pattern: success statuses directly, error
// statuses through the helper.
func handleGood(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func pick(r *http.Request) int {
	if r.URL.Path == "/" {
		return http.StatusOK
	}
	return http.StatusBadRequest
}
