package metainfo

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func buildValid(t *testing.T) *Torrent {
	t.Helper()
	b := Builder{
		Name:     "Some.Movie.2010.DVDRip.avi",
		Length:   700 << 20,
		Announce: "http://tracker.test/announce",
		Created:  time.Date(2010, 4, 7, 12, 0, 0, 0, time.UTC),
		Seed:     12345,
	}
	tor, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tor
}

func TestBuildParseRoundTrip(t *testing.T) {
	tor := buildValid(t)
	data, err := tor.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info.Name != tor.Info.Name || got.Info.Length != tor.Info.Length {
		t.Fatalf("round trip mismatch: %+v vs %+v", got.Info, tor.Info)
	}
	if got.Announce != tor.Announce {
		t.Fatalf("announce mismatch: %q vs %q", got.Announce, tor.Announce)
	}
	if !got.Created().Equal(tor.Created()) {
		t.Fatalf("created mismatch: %v vs %v", got.Created(), tor.Created())
	}
}

func TestInfoHashStableAcrossRoundTrip(t *testing.T) {
	tor := buildValid(t)
	h1, err := tor.InfoHash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := tor.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.InfoHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("info-hash changed across round trip: %s vs %s", h1, h2)
	}
}

func TestInfoHashDistinguishesContent(t *testing.T) {
	a := buildValid(t)
	b := Builder{Name: "Some.Movie.2010.DVDRip.avi", Length: 700 << 20,
		Announce: "http://tracker.test/announce", Seed: 99999}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.InfoHash()
	hb, _ := tb.InfoHash()
	if ha == hb {
		t.Fatal("different seeds produced identical info-hashes")
	}
}

func TestHashString(t *testing.T) {
	var h Hash
	h[0] = 0xAB
	h[19] = 0x01
	s := h.String()
	if len(s) != 40 {
		t.Fatalf("hash string length = %d", len(s))
	}
	if !strings.HasPrefix(s, "ab") || !strings.HasSuffix(s, "01") {
		t.Fatalf("hash string = %q", s)
	}
}

func TestNumPieces(t *testing.T) {
	for _, tc := range []struct {
		length, pieceLen int64
		want             int
	}{
		{100, 100, 1},
		{101, 100, 2},
		{1 << 20, 256 << 10, 4},
		{1, 256 << 10, 1},
	} {
		b := Builder{Name: "x", Length: tc.length, PieceLength: tc.pieceLen,
			Announce: "http://t/a", Seed: 1}
		tor, err := b.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", tc, err)
		}
		if got := tor.Info.NumPieces(); got != tc.want {
			t.Fatalf("NumPieces(len=%d,pl=%d) = %d, want %d", tc.length, tc.pieceLen, got, tc.want)
		}
	}
}

func TestValidateRejectsBadInfo(t *testing.T) {
	cases := []Info{
		{Name: "", Length: 1, PieceLength: 1, Pieces: make([]byte, 20)},
		{Name: "x", Length: 0, PieceLength: 1, Pieces: nil},
		{Name: "x", Length: 10, PieceLength: 0, Pieces: make([]byte, 20)},
		{Name: "x", Length: 10, PieceLength: 5, Pieces: make([]byte, 19)},
		{Name: "x", Length: 10, PieceLength: 5, Pieces: make([]byte, 20)}, // want 2 pieces
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, in)
		}
	}
}

func TestBuilderRejectsNonPositiveLength(t *testing.T) {
	b := Builder{Name: "x", Announce: "http://t/a"}
	if _, err := b.Build(); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestMarshalRequiresAnnounce(t *testing.T) {
	tor := buildValid(t)
	tor.Announce = ""
	if _, err := tor.Marshal(); err == nil {
		t.Fatal("empty announce accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "i42e", "d4:infodee", "not bencode"} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

// Property: building with the same parameters is deterministic, and the
// info-hash depends on the seed.
func TestBuildDeterminismProperty(t *testing.T) {
	f := func(seed uint64, ln uint32) bool {
		length := int64(ln%(1<<24)) + 1
		b := Builder{Name: "n", Length: length, Announce: "http://t/a", Seed: seed}
		t1, err1 := b.Build()
		t2, err2 := b.Build()
		if err1 != nil || err2 != nil {
			return false
		}
		h1, _ := t1.InfoHash()
		h2, _ := t2.InfoHash()
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
