// Package metainfo builds and parses .torrent metainfo files (BEP 3).
//
// The crawler downloads a .torrent for every RSS item to learn the tracker
// URL and the swarm's info-hash; the portal serves the same files. This
// package also computes the SHA-1 info-hash that identifies a swarm and the
// per-piece hashes of the content.
package metainfo

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"btpub/internal/bencode"
)

// Hash is a SHA-1 digest (the swarm identity for info dictionaries).
type Hash [20]byte

// String renders the hash in lowercase hex.
func (h Hash) String() string {
	const hexdigits = "0123456789abcdef"
	var b strings.Builder
	b.Grow(40)
	for _, c := range h {
		b.WriteByte(hexdigits[c>>4])
		b.WriteByte(hexdigits[c&0x0f])
	}
	return b.String()
}

// HashBytes computes the SHA-1 digest of data.
func HashBytes(data []byte) Hash { return sha1.Sum(data) }

// Info is the info dictionary of a torrent.
type Info struct {
	Name        string `bencode:"name"`
	Length      int64  `bencode:"length"`
	PieceLength int64  `bencode:"piece length"`
	Pieces      []byte `bencode:"pieces"`
	Private     bool   `bencode:"private,omitempty"`
}

// NumPieces reports the number of pieces described by the info dictionary.
func (i *Info) NumPieces() int { return len(i.Pieces) / 20 }

// Validate checks internal consistency of the info dictionary.
func (i *Info) Validate() error {
	switch {
	case i.Name == "":
		return errors.New("metainfo: empty name")
	case i.Length <= 0:
		return fmt.Errorf("metainfo: non-positive length %d", i.Length)
	case i.PieceLength <= 0:
		return fmt.Errorf("metainfo: non-positive piece length %d", i.PieceLength)
	case len(i.Pieces)%20 != 0:
		return fmt.Errorf("metainfo: pieces blob length %d not a multiple of 20", len(i.Pieces))
	}
	want := int((i.Length + i.PieceLength - 1) / i.PieceLength)
	if i.NumPieces() != want {
		return fmt.Errorf("metainfo: %d pieces for length %d/piece %d, want %d",
			i.NumPieces(), i.Length, i.PieceLength, want)
	}
	return nil
}

// Torrent is a parsed .torrent file.
type Torrent struct {
	Announce     string     `bencode:"announce"`
	AnnounceList [][]string `bencode:"announce-list,omitempty"`
	Comment      string     `bencode:"comment,omitempty"`
	CreatedBy    string     `bencode:"created by,omitempty"`
	CreationDate int64      `bencode:"creation date,omitempty"`
	Info         Info       `bencode:"info"`
}

// InfoHash computes the SHA-1 of the bencoded info dictionary. Because our
// encoder is canonical (sorted keys), re-encoding the parsed Info yields the
// identical bytes that were hashed at creation time.
func (t *Torrent) InfoHash() (Hash, error) {
	enc, err := bencode.Marshal(&t.Info)
	if err != nil {
		return Hash{}, fmt.Errorf("metainfo: encode info: %w", err)
	}
	return sha1.Sum(enc), nil
}

// Created reports the creation date as a time.Time (zero if unset).
func (t *Torrent) Created() time.Time {
	if t.CreationDate == 0 {
		return time.Time{}
	}
	return time.Unix(t.CreationDate, 0).UTC()
}

// Marshal renders the torrent as a .torrent file.
func (t *Torrent) Marshal() ([]byte, error) {
	if err := t.Info.Validate(); err != nil {
		return nil, err
	}
	if t.Announce == "" {
		return nil, errors.New("metainfo: empty announce URL")
	}
	return bencode.Marshal(t)
}

// Parse decodes a .torrent file.
func Parse(data []byte) (*Torrent, error) {
	var t Torrent
	if err := bencode.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("metainfo: parse: %w", err)
	}
	if err := t.Info.Validate(); err != nil {
		return nil, err
	}
	if t.Announce == "" {
		return nil, errors.New("metainfo: missing announce URL")
	}
	return &t, nil
}

// Builder assembles a torrent for synthetic content. Piece hashes are
// derived deterministically from the content seed rather than hashing
// actual bytes: the simulation never materialises file contents, only
// their hashes, which is all the protocol ever exposes.
type Builder struct {
	Name        string
	Length      int64
	PieceLength int64
	Announce    string
	Comment     string
	CreatedBy   string
	Created     time.Time
	Seed        uint64 // deterministic identity of the (synthetic) content
}

// Build produces the torrent. An unset PieceLength defaults to 256 KiB.
func (b *Builder) Build() (*Torrent, error) {
	pl := b.PieceLength
	if pl == 0 {
		pl = 256 << 10
	}
	if b.Length <= 0 {
		return nil, fmt.Errorf("metainfo: builder needs positive length, got %d", b.Length)
	}
	n := int((b.Length + pl - 1) / pl)
	pieces := make([]byte, 0, n*20)
	// One reused buffer for the synthetic piece-hash input: a Sprintf plus
	// a []byte conversion per piece dominated campaign allocations.
	seedPrefix := make([]byte, 0, len(b.Name)+48)
	seedPrefix = append(seedPrefix, b.Name...)
	seedPrefix = append(seedPrefix, '|')
	seedPrefix = strconv.AppendUint(seedPrefix, b.Seed, 10)
	seedPrefix = append(seedPrefix, '|')
	seedPrefix = strconv.AppendInt(seedPrefix, pl, 10)
	seedPrefix = append(seedPrefix, '|')
	buf := seedPrefix
	for i := 0; i < n; i++ {
		buf = strconv.AppendInt(buf[:len(seedPrefix)], int64(i), 10)
		h := sha1.Sum(buf)
		pieces = append(pieces, h[:]...)
	}
	t := &Torrent{
		Announce:  b.Announce,
		Comment:   b.Comment,
		CreatedBy: b.CreatedBy,
		Info: Info{
			Name:        b.Name,
			Length:      b.Length,
			PieceLength: pl,
			Pieces:      pieces,
		},
	}
	if !b.Created.IsZero() {
		t.CreationDate = b.Created.Unix()
	}
	if err := t.Info.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
