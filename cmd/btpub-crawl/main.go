// btpub-crawl runs the paper's measurement campaign against the simulated
// ecosystem and writes the resulting dataset as JSON Lines, one of
// mn08/pb09/pb10 style.
package main

import (
	"flag"
	"log"
	"runtime"

	"btpub/internal/campaign"
)

func main() {
	scale := flag.Float64("scale", 0.02, "world scale (1.0 = full pb10)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	md := flag.Float64("mean-downloads", 250, "mean downloader arrivals per torrent")
	style := flag.String("style", "pb10", "dataset style: pb10, pb09 or mn08")
	shards := flag.Int("shards", runtime.NumCPU(), "parallel world shards")
	workers := flag.Int("workers", 2, "announce workers per crawler vantage")
	out := flag.String("out", "", "output dataset path (default <style>.jsonl)")
	flag.Parse()

	st, err := campaign.ParseStyle(*style)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *style + ".jsonl"
	}
	res, err := campaign.Run(campaign.Spec{
		Scale: *scale, Seed: *seed, MeanDownloads: *md, Style: st,
		Shards: *shards, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Dataset.Save(path); err != nil {
		log.Fatal(err)
	}
	stats := res.Stats()
	log.Printf("%s: %d torrents (%d with IP), %d observations, %d distinct IPs, %d queries -> %s",
		*style, stats.TorrentsSeen, res.Dataset.TorrentsWithIP(),
		res.Dataset.NumObservations(), res.Dataset.DistinctIPs(), stats.TrackerQueries, path)
}
