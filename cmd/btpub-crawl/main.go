// btpub-crawl runs the paper's measurement campaign against the simulated
// ecosystem and writes the resulting dataset as JSON Lines, one of
// mn08/pb09/pb10 style. With -lake the campaign also persists into an
// observation lake: serial runs (-shards 1) stream observations into it
// live while crawling, sharded runs import the merged dataset afterwards,
// and successive crawls into the same lake accumulate with offset
// torrent IDs (the incremental-archive workflow of the follow-up
// studies).
package main

import (
	"flag"
	"log"
	"runtime"

	"btpub/internal/campaign"
	"btpub/internal/lake"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-crawl: ")
	scale := flag.Float64("scale", 0.02, "world scale (1.0 = full pb10)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	md := flag.Float64("mean-downloads", 250, "mean downloader arrivals per torrent")
	style := flag.String("style", "pb10", "dataset style: pb10, pb09 or mn08")
	shards := flag.Int("shards", runtime.NumCPU(), "parallel world shards")
	workers := flag.Int("workers", 2, "announce workers per crawler vantage")
	out := flag.String("out", "", "output dataset path (default <style>.jsonl; \"-\" skips the JSONL)")
	lakeDir := flag.String("lake", "", "also persist the campaign into this lake directory")
	flag.Parse()

	st, err := campaign.ParseStyle(*style)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = *style + ".jsonl"
	}
	spec := campaign.Spec{
		Scale: *scale, Seed: *seed, MeanDownloads: *md, Style: st,
		Shards: *shards, Workers: *workers,
	}
	if *lakeDir != "" {
		lk, err := lake.Open(*lakeDir, lake.Options{Compact: lake.CompactOptions{Auto: true}})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := lk.Close(); err != nil {
				log.Fatal(err)
			}
			ls := lk.Stats()
			log.Printf("lake %s: v%d, %d segments, %d observations, %d torrents total",
				*lakeDir, ls.Version, ls.Segments, ls.Observations, ls.Torrents)
		}()
		spec.Lake = lk
	}
	res, err := campaign.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	if path != "-" {
		if err := res.Dataset.Save(path); err != nil {
			log.Fatal(err)
		}
	}
	stats := res.Stats()
	log.Printf("%s: %d torrents (%d with IP), %d observations, %d distinct IPs, %d queries -> %s",
		*style, stats.TorrentsSeen, res.Dataset.TorrentsWithIP(),
		res.Dataset.NumObservations(), res.Dataset.DistinctIPs(), stats.TrackerQueries, path)
}
