// btpub-serve is the lake query server: it serves the paper's tables and
// raw observation queries over HTTP from a persistent observation lake,
// while writers keep appending to it. Analysis snapshots are cached per
// committed lake version, so many concurrent readers cost one index
// build per version, not one per request.
//
// Typical uses:
//
//	# serve an existing lake
//	btpub-serve -lake pb10.lake
//
//	# migrate a JSONL dataset into a lake, then serve it
//	btpub-serve -lake pb10.lake -import pb10.jsonl
//
//	# demo: ingest a live simulated campaign while serving it
//	btpub-serve -lake live.lake -live -scale 0.02
//
// Endpoints (see internal/lakeserve; every route also answers on the
// deprecated un-prefixed legacy path):
//
//	curl localhost:8813/api/v1/stats
//	curl localhost:8813/api/v1/tables/1
//	curl 'localhost:8813/api/v1/tables/2?n=10&format=json'
//	curl 'localhost:8813/api/v1/tables/3?isps=OVH,Comcast'
//	curl 'localhost:8813/api/v1/top-publishers?n=20'
//	curl 'localhost:8813/api/v1/publishers/classified?n=20'
//	curl 'localhost:8813/api/v1/fakes?n=50'
//	curl 'localhost:8813/api/v1/torrents/17/observations?limit=100'
//	curl 'localhost:8813/api/v1/alerts?since=0&wait=25s'
//	curl -d '{"group_by":{"key":"isp"},"aggs":["distinct-ips"]}' localhost:8813/api/v1/query
//
// Snapshot refreshes are incremental (internal/delta) and feed the
// fake/scam alert engine; -live logs every changed alert and polls the
// refresh on a timer so detection keeps pace with ingest even without
// request traffic. -alert-webhook POSTs changed alerts to an external
// receiver in any mode.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"btpub/internal/alert"
	"btpub/internal/campaign"
	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/lakeserve"
	"btpub/internal/population"
	"btpub/internal/webmon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-serve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run keeps every exit path behind the deferred lake Close (log.Fatal
// would skip it). SIGINT/SIGTERM drain the HTTP server first —
// in-flight lake scans finish cleanly — and then the deferred Close
// flushes pending state and deletes compaction-retired files.
func run() error {
	dir := flag.String("lake", "pb10.lake", "lake directory")
	addr := flag.String("http", "127.0.0.1:8813", "listen address")
	imp := flag.String("import", "", "JSONL dataset to import into the lake before serving")
	live := flag.Bool("live", false, "run a simulated campaign that streams into the lake while serving")
	scale := flag.Float64("scale", 0.02, "world scale for -live")
	seed := flag.Uint64("seed", 1, "scenario seed for -live")
	scenarios := flag.String("scenarios", "", "adversarial publisher profiles for -live (alias,churn,blitz,purge; or all)")
	topK := flag.Int("topk", 0, "top-K publisher cut (0 = the paper's 3% rule)")
	salvage := flag.Bool("salvage", false, "drop corrupt segments at open instead of failing")
	maxConc := flag.Int("max-concurrent", 0, "max in-flight API requests before shedding 429s (0 = default, negative = unlimited)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request wall-clock budget (0 = default, negative = none)")
	webhook := flag.String("alert-webhook", "", "POST changed fake/scam alerts to this URL (one JSON array per refresh)")
	flag.Parse()

	lk, err := lake.Open(*dir, lake.Options{Salvage: *salvage, Compact: lake.CompactOptions{Auto: true}})
	if err != nil {
		return err
	}
	defer lk.Close()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	if *imp != "" {
		ds, err := dataset.Load(*imp)
		if err != nil {
			return err
		}
		if err := lk.ImportDataset(ds); err != nil {
			return err
		}
		log.Printf("imported %s: %d torrents, %d observations (%d dropped upstream)",
			*imp, len(ds.Torrents), ds.NumObservations(), ds.DroppedObservations)
	}

	db, err := geoip.DefaultDB()
	if err != nil {
		return err
	}
	srv := &lakeserve.Server{
		Lake: lk, Geo: db, TopK: *topK,
		MaxConcurrent:  *maxConc,
		RequestTimeout: *reqTimeout,
	}
	defer srv.Close()

	var notifiers alert.MultiNotifier
	if *live {
		notifiers = append(notifiers, &alert.LogNotifier{Log: log.Default()})
	}
	if *webhook != "" {
		notifiers = append(notifiers, &alert.WebhookNotifier{URL: *webhook})
	}
	if len(notifiers) > 0 {
		srv.AlertNotifier = notifiers
	}

	if *live {
		adv, err := population.ParseScenarios(*scenarios)
		if err != nil {
			return err
		}
		go func() {
			log.Printf("live campaign: scale=%.3f seed=%d scenarios=%v streaming into %s",
				*scale, *seed, adv, *dir)
			res, err := campaign.Run(campaign.Spec{
				Scale: *scale, Seed: *seed, MeanDownloads: 250, Lake: lk, Scenarios: adv,
			})
			if err != nil {
				log.Printf("live campaign failed: %v", err)
				return
			}
			log.Printf("live campaign done: %d torrents, %d observations committed",
				len(res.Dataset.Torrents), res.Dataset.NumObservations())
			// With the world in hand, /publishers/classified can resolve
			// promoted sites to their businesses instead of treating every
			// promoter's site as vanished.
			mon, err := webmon.NewDirectory(res.World, *seed)
			if err != nil {
				log.Printf("webmon directory failed (promoted sites will serve as vanished): %v", err)
				return
			}
			srv.SetInspector(mon)
		}()
		// Refreshes are normally request-driven; while a campaign streams
		// in, poll so alerts fire within seconds of their evidence landing
		// even when nobody is querying.
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for range tick.C {
				srv.Refresh()
			}
		}()
	}
	st := lk.Stats()
	log.Printf("serving lake %s (v%d, %d segments, %d observations, %d torrents) on http://%s",
		*dir, st.Version, st.Segments, st.Observations, st.Torrents, *addr)
	log.Printf("journal: head v%d, checkpoint v%d, %d commits, %d bytes on disk",
		st.Version, st.CheckpointVersion, st.Commits, st.TotalBytes)

	// Serve behind an http.Server so a signal drains in-flight requests
	// (long lake scans included) via Shutdown instead of killing them
	// mid-response. A -live campaign still streaming at that point is
	// not awaited: once the deferred Close marks the lake closed, its
	// remaining appends are refused with a clean "lake: closed" error
	// (logged by the campaign goroutine) — committed state stays
	// consistent either way.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		log.Printf("%v: draining connections, then closing lake", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		return nil
	}
}
