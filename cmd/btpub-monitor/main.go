// btpub-monitor is the paper's Section 7 application: it monitors content
// publishing (here: one simulated campaign, or an existing observation
// lake via -lake), builds the publisher database and serves the public
// query interface over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"

	"btpub/internal/campaign"
	"btpub/internal/classify"
	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/monitor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-monitor: ")
	scale := flag.Float64("scale", 0.01, "world scale for the monitored campaign")
	seed := flag.Uint64("seed", 1, "scenario seed")
	addr := flag.String("http", "127.0.0.1:8812", "query interface address")
	lakeDir := flag.String("lake", "", "build the publisher DB from this lake instead of running a campaign")
	flag.Parse()

	var ds *dataset.Dataset
	geo, err := geoip.DefaultDB()
	if err != nil {
		log.Fatal(err)
	}
	if *lakeDir != "" {
		lk, err := lake.Open(*lakeDir, lake.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ds, err = lk.Materialize(context.Background(), lake.Predicate{})
		lk.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("monitoring lake %s: %d torrents, %d observations", *lakeDir, len(ds.Torrents), ds.NumObservations())
	} else {
		log.Printf("monitoring a pb10-style campaign at scale %.3f ...", *scale)
		res, err := campaign.Run(campaign.Spec{Scale: *scale, Seed: *seed, MeanDownloads: 250})
		if err != nil {
			log.Fatal(err)
		}
		ds = res.Dataset
	}
	db := monitor.NewDB(geo)
	if err := db.IngestDataset(ds); err != nil {
		log.Fatal(err)
	}
	// Attach promoted URLs (the per-publisher business view of Section 7).
	for _, rec := range ds.Torrents {
		if url, _ := classify.ExtractPromo(rec); url != "" && rec.Username != "" {
			_ = db.Ingest(monitor.Record{
				Title: rec.Title, Username: rec.Username,
				Published: rec.Published, PromoURL: url,
			})
		}
	}
	fmt.Printf("publisher DB ready: %d publishers, %d fake\n",
		len(db.Publishers()), len(db.Fakes()))
	fmt.Printf("query interface: http://%s/publishers | /publisher?u=NAME | /fakes | /recent?n=50\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, &monitor.Handler{DB: db}))
}
