// btpub-query runs one composable query against an observation lake —
// either a local lake directory (the query executes in-process with
// zone-map pushdown) or a running btpub-serve instance (the same Query
// goes over POST /api/v1/query). Flags compile straight into a
// query.Query, so everything the API can express, the CLI can ask.
//
// Examples:
//
//	# top ISPs by distinct downloader IPs, from a local lake
//	btpub-query -lake pb10.lake -group isp -aggs distinct-ips,observations \
//	    -order distinct-ips -desc -limit 10
//
//	# per-publisher seeder sightings in a time window, from a server
//	btpub-query -remote http://127.0.0.1:8813 -group publisher \
//	    -aggs seeders,observations -min 2010-04-10T00:00:00Z -seeders
//
//	# raw observations of one torrent
//	btpub-query -lake pb10.lake -select observations -torrents 17 -limit 20
//
//	# page through a big result
//	btpub-query -lake pb10.lake -group torrent -aggs max-swarm -limit 1000 -cursor <tok>
//
//	# tail the fake/scam alert feed from a server
//	btpub-query -remote http://127.0.0.1:8813 -alerts -since 42 -wait 25s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"btpub/internal/apiclient"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-query: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lakeDir := flag.String("lake", "", "query this local lake directory")
	remote := flag.String("remote", "", "query a running btpub-serve at this base URL instead of a local lake")
	sel := flag.String("select", "", "result shape: groups (default) or observations")
	minT := flag.String("min", "", "min observation time (RFC3339, inclusive)")
	maxT := flag.String("max", "", "max observation time (RFC3339, inclusive)")
	torrents := flag.String("torrents", "", "comma-separated torrent IDs")
	publishers := flag.String("publishers", "", "comma-separated publisher usernames")
	ips := flag.String("ips", "", "comma-separated peer addresses (point lookup via microindex postings)")
	isps := flag.String("isps", "", "comma-separated peer ISPs")
	countries := flag.String("countries", "", "comma-separated peer countries")
	seeders := flag.Bool("seeders", false, "seeder sightings only")
	asOf := flag.Uint64("as-of", 0, "pin the query to this committed lake version (0 = head); replays reproducibly while ingest continues")
	group := flag.String("group", "", "group by: publisher|isp|country|torrent|content-type|time-bucket")
	bucket := flag.Duration("bucket", 0, "time-bucket width (with -group time-bucket), e.g. 6h")
	aggs := flag.String("aggs", "", "comma-separated aggregates: observations,distinct-ips,seeders,torrents,max-swarm")
	order := flag.String("order", "", "order rows by \"key\" or one of the requested aggregates")
	desc := flag.Bool("desc", false, "descending order")
	limit := flag.Int("limit", 0, "row limit (0 = all); a truncated result prints a next cursor")
	cursor := flag.String("cursor", "", "resume a paginated walk")
	alerts := flag.Bool("alerts", false, "fetch the fake/scam alert feed instead of running a query (needs -remote)")
	since := flag.Uint64("since", 0, "with -alerts: only alerts updated after this version cursor")
	wait := flag.Duration("wait", 0, "with -alerts: long-poll up to this long for alerts past the cursor")
	asJSON := flag.Bool("json", false, "print the raw JSON result instead of a table")
	explain := flag.Bool("explain", false, "print the query plan (predicate order, segment pruning, workers) instead of executing")
	timeout := flag.Duration("timeout", 0, "per-request HTTP timeout for -remote (0 = client default, negative = none)")
	flag.Parse()

	if (*lakeDir == "") == (*remote == "") {
		return fmt.Errorf("exactly one of -lake or -remote is required")
	}
	if *alerts {
		if *remote == "" {
			return fmt.Errorf("-alerts needs -remote: the alert feed lives on the server")
		}
		return fetchAlerts(context.Background(), os.Stdout, *remote, *since, *wait, *timeout, *asJSON)
	}
	// Queries are read-only: opening a missing directory would create an
	// empty lake and every query would "succeed" with zero rows.
	if *lakeDir != "" {
		if fi, err := os.Stat(*lakeDir); err != nil || !fi.IsDir() {
			return fmt.Errorf("-lake %q: no such lake directory", *lakeDir)
		}
	}

	q := query.Query{
		Select: *sel,
		Filter: query.Filter{
			TorrentIDs:  nil,
			Publishers:  csv(*publishers),
			IPs:         csv(*ips),
			ISPs:        csv(*isps),
			Countries:   csv(*countries),
			SeedersOnly: *seeders,
			AsOf:        *asOf,
		},
		GroupBy: query.GroupBy{Key: *group, Bucket: query.Duration(*bucket)},
		Aggs:    csv(*aggs),
		OrderBy: query.OrderBy{Field: *order, Desc: *desc},
		Limit:   *limit,
		Cursor:  *cursor,
	}
	var err error
	if q.Filter.MinTime, err = parseTime(*minT, "-min"); err != nil {
		return err
	}
	if q.Filter.MaxTime, err = parseTime(*maxT, "-max"); err != nil {
		return err
	}
	if *torrents != "" {
		for _, s := range csv(*torrents) {
			id, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("-torrents: %q is not an integer", s)
			}
			q.Filter.TorrentIDs = append(q.Filter.TorrentIDs, id)
		}
	}
	if err := q.Validate(); err != nil {
		return err
	}

	ctx := context.Background()
	if *explain {
		if *lakeDir == "" {
			return fmt.Errorf("-explain plans against a local lake (use -lake, not -remote)")
		}
		return explainLocal(ctx, q, *lakeDir, *asJSON)
	}
	res, err := execute(ctx, q, *lakeDir, *remote, *timeout)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(res)
	}
	return render(os.Stdout, q, res)
}

// fetchAlerts is the -alerts mode: the server's deduplicated alert feed
// past the -since cursor, optionally long-polling with -wait.
func fetchAlerts(ctx context.Context, out io.Writer, remote string, since uint64, wait, timeout time.Duration, asJSON bool) error {
	c := apiclient.New(remote)
	c.Timeout = timeout
	if wait > 0 && timeout == 0 && wait+5*time.Second > apiclient.DefaultTimeout {
		// Keep the HTTP exchange outliving the server-side long poll.
		c.Timeout = wait + 5*time.Second
	}
	feed, err := c.Alerts(ctx, since, wait)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		return enc.Encode(feed)
	}
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "STATE\tSEVERITY\tRULE\tSUBJECT\tSCORE\tTORRENTS\tIPS\tUPDATED\tREASON")
	for _, a := range feed.Alerts {
		reason := ""
		if len(a.Reasons) > 0 {
			reason = a.Reasons[0]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\t%d\t%d\tv%d\t%s\n",
			a.State, a.Severity, a.Rule, a.Subject, a.Score, a.Torrents, a.IPs, a.UpdatedVersion, reason)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%d alert(s); resume with -since %d\n", len(feed.Alerts), feed.Version)
	return nil
}

func execute(ctx context.Context, q query.Query, lakeDir, remote string, timeout time.Duration) (*query.Result, error) {
	if remote != "" {
		c := apiclient.New(remote)
		c.Timeout = timeout
		return c.Query(ctx, q)
	}
	lk, err := lake.Open(lakeDir, lake.Options{})
	if err != nil {
		return nil, err
	}
	defer lk.Close()
	db, err := geoip.DefaultDB()
	if err != nil {
		return nil, err
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		return nil, err
	}
	return ex.Execute(ctx, q)
}

// explainLocal plans the query against a local lake and prints the
// plan: predicate order, segment pruning (zone maps vs microindex
// postings), and the scan parallelism Execute would use.
func explainLocal(ctx context.Context, q query.Query, lakeDir string, asJSON bool) error {
	lk, err := lake.Open(lakeDir, lake.Options{})
	if err != nil {
		return err
	}
	defer lk.Close()
	db, err := geoip.DefaultDB()
	if err != nil {
		return err
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		return err
	}
	pl, err := ex.Explain(ctx, q)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(pl)
	}
	preds := strings.Join(pl.Predicates, " -> ")
	if preds == "" {
		preds = "(none: full scan)"
	}
	fmt.Printf("predicates:      %s\n", preds)
	if pl.PushdownTorrentIDs >= 0 {
		fmt.Printf("torrent pushdown: %d torrent ID(s) compiled from the filter\n", pl.PushdownTorrentIDs)
	}
	fmt.Printf("segments:        %d committed\n", pl.Segments)
	fmt.Printf("  pruned (zone):     %d\n", pl.PrunedZone)
	fmt.Printf("  pruned (postings): %d\n", pl.PrunedPostings)
	fmt.Printf("  opened:            %d (%d rows)\n", len(pl.Opened), pl.Rows)
	if n := len(pl.Opened); n > 0 && n <= 12 {
		for _, f := range pl.Opened {
			fmt.Printf("    %s\n", f)
		}
	}
	fmt.Printf("workers:         %d\n", pl.Workers)
	return nil
}

// render prints the result as an aligned table.
func render(out *os.File, q query.Query, res *query.Result) error {
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	if res.Observations != nil || q.Select == query.SelectObservations {
		fmt.Fprintln(tw, "TORRENT\tIP\tAT\tSEEDER")
		for _, o := range res.Observations {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%v\n", o.TorrentID, o.IP, o.At.Format(time.RFC3339), o.Seeder)
		}
	} else {
		// Column order follows the requested aggregates (default applies
		// when none were named).
		names := q.Aggs
		if len(names) == 0 {
			names = []string{query.AggObservations}
		}
		fmt.Fprintf(tw, "KEY\t%s\n", strings.ToUpper(strings.Join(names, "\t")))
		for _, g := range res.Groups {
			key := g.Key
			if key == "" {
				key = "(all)"
			}
			fmt.Fprint(tw, key)
			for _, a := range names {
				fmt.Fprintf(tw, "\t%d", g.Aggs[a])
			}
			fmt.Fprintln(tw)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%d row(s) of %d total\n", len(res.Groups)+len(res.Observations), res.Total)
	if res.NextCursor != "" {
		fmt.Fprintf(out, "next page: -cursor %s\n", res.NextCursor)
	}
	return nil
}

func csv(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parseTime(s, flagName string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("%s: %q is not RFC3339 (e.g. 2010-04-06T00:00:00Z)", flagName, s)
	}
	return t, nil
}
