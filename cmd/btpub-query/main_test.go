package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"btpub/internal/alert"
)

// scriptedAlerts serves one canned feed on /api/v1/alerts and records
// the query parameters it saw.
func scriptedAlerts(t *testing.T) (*httptest.Server, *string) {
	t.Helper()
	var query string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/alerts" {
			http.NotFound(w, r)
			return
		}
		query = r.URL.RawQuery
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(alert.Feed{
			Version: 11,
			Alerts: []alert.Alert{
				{
					ID: "alias-cluster/shadow", Rule: "alias-cluster", Subject: "shadow",
					Severity: alert.SeverityWarning, Score: 1.33, State: alert.StateFiring,
					Reasons:      []string{"4 identities publish from 10.1.2.3 (threshold 3)"},
					FiredVersion: 4, UpdatedVersion: 4, Torrents: 12, IPs: 3,
				},
				{
					ID: "upload-burst/blitz", Rule: "upload-burst", Subject: "blitz",
					Severity: alert.SeverityCritical, Score: 2.25, State: alert.StateResolved,
					FiredVersion: 5, UpdatedVersion: 11, ResolvedVersion: 11, Torrents: 27, IPs: 4,
				},
			},
		})
	}))
	t.Cleanup(srv.Close)
	return srv, &query
}

func TestFetchAlertsTable(t *testing.T) {
	srv, query := scriptedAlerts(t)
	var out strings.Builder
	if err := fetchAlerts(context.Background(), &out, srv.URL, 3, 2*time.Second, 0, false); err != nil {
		t.Fatal(err)
	}
	if *query != "since=3&wait=2s" {
		t.Fatalf("query = %q", *query)
	}
	got := out.String()
	for _, want := range []string{
		"STATE", "SEVERITY", "RULE", "SUBJECT",
		"firing", "warning", "alias-cluster", "shadow", "1.33", "v4",
		"resolved", "critical", "upload-burst", "blitz", "2.25", "v11",
		"4 identities publish from 10.1.2.3 (threshold 3)",
		"2 alert(s); resume with -since 11",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFetchAlertsJSON(t *testing.T) {
	srv, _ := scriptedAlerts(t)
	var out strings.Builder
	if err := fetchAlerts(context.Background(), &out, srv.URL, 0, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	var feed alert.Feed
	if err := json.Unmarshal([]byte(out.String()), &feed); err != nil {
		t.Fatalf("-json output is not a feed: %v\n%s", err, out.String())
	}
	if feed.Version != 11 || len(feed.Alerts) != 2 {
		t.Fatalf("feed = %+v", feed)
	}
}
