// btpub-analyze loads a crawled dataset (JSONL from btpub-crawl, or a
// persistent observation lake) and prints every table and figure the
// paper's analysis derives from it. Business classification uses a
// URL-pattern inspector, since a saved dataset has no live sites left to
// visit.
//
// Lake workflows:
//
//	btpub-analyze -lake pb10.lake              analyze a lake directly
//	btpub-analyze -in pb10.jsonl -import pb10.lake
//	                                           migrate JSONL into a lake,
//	                                           then analyze from the lake
//	btpub-analyze -remote http://127.0.0.1:8813
//	                                           render the tables from a
//	                                           running btpub-serve
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"btpub/internal/analysis"
	"btpub/internal/apiclient"
	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/population"
)

// patternInspector classifies promoted sites from their URL shape when the
// live site is gone (offline re-analysis of an old dataset).
type patternInspector struct{}

func (patternInspector) Inspect(url string) (population.BusinessType, string, error) {
	switch {
	case strings.Contains(url, "pix"):
		return population.BusinessImageHosting, "", nil
	case strings.HasPrefix(url, "forum."):
		return population.BusinessForum, "", nil
	case strings.Contains(url, "lightway"):
		return population.BusinessReligious, "", nil
	default:
		return population.BusinessPrivatePortal, "", nil
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-analyze: ")
	in := flag.String("in", "pb10.jsonl", "dataset path (JSONL)")
	lakeDir := flag.String("lake", "", "analyze this lake directory instead of -in")
	imp := flag.String("import", "", "import -in into this lake directory, then analyze from the lake")
	remote := flag.String("remote", "", "render the tables from a running btpub-serve at this base URL")
	topK := flag.Int("topk", 0, "top-K publisher cut (0 = the paper's 3% rule; local modes only)")
	gap := flag.Duration("gap", 0, "session gap threshold (0 = the paper's ~4h)")
	n := flag.Int("n", 10, "Table 2 row count (with -remote)")
	timeout := flag.Duration("timeout", 0, "per-request HTTP timeout for -remote (0 = client default, negative = none)")
	flag.Parse()
	ctx := context.Background()

	if *remote != "" {
		if *lakeDir != "" || *imp != "" {
			log.Fatal("-remote is mutually exclusive with -lake and -import")
		}
		if err := runRemote(ctx, *remote, *n, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}

	db, err := geoip.DefaultDB()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := loadDataset(ctx, *in, *lakeDir, *imp)
	if err != nil {
		log.Fatal(err)
	}
	a, err := analysis.New(ds, db, *topK)
	if err != nil {
		log.Fatal(err)
	}
	name := ds.Name

	fmt.Println(analysis.RenderSummary([]analysis.DatasetSummary{a.Summary()}))
	// Surface ingest losses next to the Table 1 numbers: non-zero means
	// observations arrived without a matching torrent record somewhere
	// between crawl, merge and lake.
	fmt.Printf("dropped observations (no matching torrent record): %d\n\n", ds.DroppedObservations)
	fmt.Println(analysis.RenderSkewness(name, a.Skewness()))
	fmt.Println(analysis.RenderISPTable(name, a.ISPTable(10)))
	fmt.Println(analysis.RenderContrast(name, a.ContrastISPs(geoip.OVH, geoip.Comcast)))
	fmt.Println(analysis.RenderCross(name, a.Facts.Cross(0)))
	fmt.Println(analysis.RenderContentTypes(name, a.ContentTypes()))
	fmt.Println(analysis.RenderPopularity(name, a.Popularity()))
	fmt.Println(analysis.RenderSeeding(name, a.Seeding(*gap)))

	profiles, sums, err := a.Business(patternInspector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderBusiness(name, sums))
	if long, err := a.LongitudinalView(profiles); err == nil {
		fmt.Println(analysis.RenderLongitudinal(name, long))
	}
	fmt.Println(analysis.RenderHostingIncome(name, a.HostingIncomeFor(geoip.OVH)))
}

// runRemote renders the server-side tables: the exact text a local
// analysis would print, but produced by the running btpub-serve from its
// cached snapshot — no dataset ever leaves the server.
func runRemote(ctx context.Context, base string, n int, timeout time.Duration) error {
	c := apiclient.New(base)
	c.Timeout = timeout
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("remote lake %s: v%d, %d segments, %d observations, %d torrents (analysis v%d)\n\n",
		st.Lake.Name, st.Lake.Version, st.Lake.Segments, st.Lake.Observations,
		st.Lake.Torrents, st.AnalysisVersion)
	for _, table := range []struct {
		id    int
		extra url.Values
	}{
		{1, nil},
		{2, url.Values{"n": {strconv.Itoa(n)}}},
		{3, nil},
	} {
		txt, err := c.TableText(ctx, table.id, table.extra)
		if err != nil {
			return err
		}
		fmt.Println(txt)
	}
	return nil
}

// loadDataset resolves the three input modes: plain JSONL, lake, or the
// JSONL→lake migration path (-import), which round-trips through the
// lake so the printed tables prove the migrated archive is intact.
func loadDataset(ctx context.Context, in, lakeDir, imp string) (*dataset.Dataset, error) {
	switch {
	case lakeDir != "" && imp != "":
		return nil, fmt.Errorf("-lake and -import are mutually exclusive")
	case lakeDir != "":
		// Read-only mode: opening a missing directory would create an
		// empty lake and analyze zero observations without complaint.
		if fi, err := os.Stat(lakeDir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("-lake %q: no such lake directory", lakeDir)
		}
		lk, err := lake.Open(lakeDir, lake.Options{})
		if err != nil {
			return nil, err
		}
		defer lk.Close()
		return lk.Materialize(ctx, lake.Predicate{})
	case imp != "":
		ds, err := dataset.Load(in)
		if err != nil {
			return nil, err
		}
		lk, err := lake.Open(imp, lake.Options{})
		if err != nil {
			return nil, err
		}
		defer lk.Close()
		if err := lk.ImportDataset(ds); err != nil {
			return nil, err
		}
		st := lk.Stats()
		log.Printf("imported %s into lake %s: v%d, %d segments, %d observations, %d torrents total",
			in, imp, st.Version, st.Segments, st.Observations, st.Torrents)
		return lk.Materialize(ctx, lake.Predicate{})
	default:
		return dataset.Load(in)
	}
}
