// btpub-analyze loads a crawled dataset (JSONL, from btpub-crawl) and
// prints every table and figure the paper's analysis derives from it.
// Business classification uses a URL-pattern inspector, since a saved
// dataset has no live sites left to visit.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"btpub/internal/analysis"
	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/population"
)

// patternInspector classifies promoted sites from their URL shape when the
// live site is gone (offline re-analysis of an old dataset).
type patternInspector struct{}

func (patternInspector) Inspect(url string) (population.BusinessType, string, error) {
	switch {
	case strings.Contains(url, "pix"):
		return population.BusinessImageHosting, "", nil
	case strings.HasPrefix(url, "forum."):
		return population.BusinessForum, "", nil
	case strings.Contains(url, "lightway"):
		return population.BusinessReligious, "", nil
	default:
		return population.BusinessPrivatePortal, "", nil
	}
}

func main() {
	in := flag.String("in", "pb10.jsonl", "dataset path")
	topK := flag.Int("topk", 0, "top-K publisher cut (0 = the paper's 3% rule)")
	gap := flag.Duration("gap", 0, "session gap threshold (0 = the paper's ~4h)")
	flag.Parse()

	ds, err := dataset.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		log.Fatal(err)
	}
	a, err := analysis.New(ds, db, *topK)
	if err != nil {
		log.Fatal(err)
	}
	name := ds.Name

	fmt.Println(analysis.RenderSummary([]analysis.DatasetSummary{a.Summary()}))
	fmt.Println(analysis.RenderSkewness(name, a.Skewness()))
	fmt.Println(analysis.RenderISPTable(name, a.ISPTable(10)))
	fmt.Println(analysis.RenderContrast(name, a.ContrastISPs(geoip.OVH, geoip.Comcast)))
	fmt.Println(analysis.RenderCross(name, a.Facts.Cross(0)))
	fmt.Println(analysis.RenderContentTypes(name, a.ContentTypes()))
	fmt.Println(analysis.RenderPopularity(name, a.Popularity()))
	fmt.Println(analysis.RenderSeeding(name, a.Seeding(*gap)))

	profiles, sums, err := a.Business(patternInspector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderBusiness(name, sums))
	if long, err := a.LongitudinalView(profiles); err == nil {
		fmt.Println(analysis.RenderLongitudinal(name, long))
	}
	fmt.Println(analysis.RenderHostingIncome(name, a.HostingIncomeFor(geoip.OVH)))

	_ = time.Now
}
