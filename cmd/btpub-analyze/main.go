// btpub-analyze loads a crawled dataset (JSONL from btpub-crawl, or a
// persistent observation lake) and prints every table and figure the
// paper's analysis derives from it. Business classification uses a
// URL-pattern inspector, since a saved dataset has no live sites left to
// visit.
//
// Lake workflows:
//
//	btpub-analyze -lake pb10.lake              analyze a lake directly
//	btpub-analyze -in pb10.jsonl -import pb10.lake
//	                                           migrate JSONL into a lake,
//	                                           then analyze from the lake
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"btpub/internal/analysis"
	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/population"
)

// patternInspector classifies promoted sites from their URL shape when the
// live site is gone (offline re-analysis of an old dataset).
type patternInspector struct{}

func (patternInspector) Inspect(url string) (population.BusinessType, string, error) {
	switch {
	case strings.Contains(url, "pix"):
		return population.BusinessImageHosting, "", nil
	case strings.HasPrefix(url, "forum."):
		return population.BusinessForum, "", nil
	case strings.Contains(url, "lightway"):
		return population.BusinessReligious, "", nil
	default:
		return population.BusinessPrivatePortal, "", nil
	}
}

func main() {
	in := flag.String("in", "pb10.jsonl", "dataset path (JSONL)")
	lakeDir := flag.String("lake", "", "analyze this lake directory instead of -in")
	imp := flag.String("import", "", "import -in into this lake directory, then analyze from the lake")
	topK := flag.Int("topk", 0, "top-K publisher cut (0 = the paper's 3% rule)")
	gap := flag.Duration("gap", 0, "session gap threshold (0 = the paper's ~4h)")
	flag.Parse()

	db, err := geoip.DefaultDB()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := loadDataset(*in, *lakeDir, *imp)
	if err != nil {
		log.Fatal(err)
	}
	a, err := analysis.New(ds, db, *topK)
	if err != nil {
		log.Fatal(err)
	}
	name := ds.Name

	fmt.Println(analysis.RenderSummary([]analysis.DatasetSummary{a.Summary()}))
	// Surface ingest losses next to the Table 1 numbers: non-zero means
	// observations arrived without a matching torrent record somewhere
	// between crawl, merge and lake.
	fmt.Printf("dropped observations (no matching torrent record): %d\n\n", ds.DroppedObservations)
	fmt.Println(analysis.RenderSkewness(name, a.Skewness()))
	fmt.Println(analysis.RenderISPTable(name, a.ISPTable(10)))
	fmt.Println(analysis.RenderContrast(name, a.ContrastISPs(geoip.OVH, geoip.Comcast)))
	fmt.Println(analysis.RenderCross(name, a.Facts.Cross(0)))
	fmt.Println(analysis.RenderContentTypes(name, a.ContentTypes()))
	fmt.Println(analysis.RenderPopularity(name, a.Popularity()))
	fmt.Println(analysis.RenderSeeding(name, a.Seeding(*gap)))

	profiles, sums, err := a.Business(patternInspector{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.RenderBusiness(name, sums))
	if long, err := a.LongitudinalView(profiles); err == nil {
		fmt.Println(analysis.RenderLongitudinal(name, long))
	}
	fmt.Println(analysis.RenderHostingIncome(name, a.HostingIncomeFor(geoip.OVH)))

	_ = time.Now
}

// loadDataset resolves the three input modes: plain JSONL, lake, or the
// JSONL→lake migration path (-import), which round-trips through the
// lake so the printed tables prove the migrated archive is intact.
func loadDataset(in, lakeDir, imp string) (*dataset.Dataset, error) {
	switch {
	case lakeDir != "" && imp != "":
		return nil, fmt.Errorf("-lake and -import are mutually exclusive")
	case lakeDir != "":
		lk, err := lake.Open(lakeDir, lake.Options{})
		if err != nil {
			return nil, err
		}
		defer lk.Close()
		return lk.Materialize(context.Background(), lake.Predicate{})
	case imp != "":
		ds, err := dataset.Load(in)
		if err != nil {
			return nil, err
		}
		lk, err := lake.Open(imp, lake.Options{})
		if err != nil {
			return nil, err
		}
		defer lk.Close()
		if err := lk.ImportDataset(ds); err != nil {
			return nil, err
		}
		st := lk.Stats()
		log.Printf("imported %s into lake %s: v%d, %d segments, %d observations, %d torrents total",
			in, imp, st.Version, st.Segments, st.Observations, st.Torrents)
		return lk.Materialize(context.Background(), lake.Predicate{})
	default:
		return dataset.Load(in)
	}
}
