// benchjson converts `go test -bench -benchmem` text output (stdin) into a
// JSON benchmark record, and optionally enforces allocs/op ceilings so CI
// fails fast on allocation regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_2026-07-28.json
//	go test -run '^$' -bench 'BenchmarkCampaign' -benchmem . | benchjson -ceilings ci/bench-ceilings.txt
//
// The ceilings file lists "BenchmarkName maxAllocsPerOp" pairs (# starts a
// comment). A listed benchmark missing from the input is an error too, so
// the gate cannot silently rot. -only restricts enforcement to ceiling
// entries matching a regexp, so one shared ceilings file serves targets
// that each run a subset of the gated benchmarks (e.g. `make bench-lake`
// enforces only the ^BenchmarkLake entries).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "disk-bytes").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the serialized document.
type Report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	ceilings := flag.String("ceilings", "", "allocs/op ceilings file to enforce")
	only := flag.String("only", "", "regexp restricting which ceiling entries apply (default all)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}
	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *ceilings != "" {
		if err := enforceCeilings(*ceilings, *only, results); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "benchjson: all alloc ceilings respected")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8  	  100	  123456 ns/op	  789 B/op	  12 allocs/op
func parseBench(f *os.File) ([]Result, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	var out []Result
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw line so piping through benchjson loses nothing.
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: baseName(fields[0]), Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				ok = true
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			case "MB/s":
				// throughput from b.SetBytes; derivable, not recorded
			default:
				// custom b.ReportMetric unit
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// baseName strips the -GOMAXPROCS suffix go test appends.
func baseName(s string) string {
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

func enforceCeilings(path, only string, results []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var onlyRe *regexp.Regexp
	if only != "" {
		if onlyRe, err = regexp.Compile(only); err != nil {
			return fmt.Errorf("benchjson: bad -only regexp: %w", err)
		}
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	enforced := 0
	var violations []string
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("benchjson: %s:%d: want \"BenchmarkName maxAllocsPerOp\", got %q", path, ln+1, line)
		}
		ceiling, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("benchjson: %s:%d: bad ceiling %q", path, ln+1, fields[1])
		}
		if onlyRe != nil && !onlyRe.MatchString(fields[0]) {
			continue
		}
		enforced++
		r, ok := byName[fields[0]]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: not present in benchmark output", fields[0]))
			continue
		}
		if r.AllocsPerOp > ceiling {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op exceeds ceiling %d", r.Name, r.AllocsPerOp, ceiling))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchjson: allocation ceilings violated:\n  %s", strings.Join(violations, "\n  "))
	}
	if enforced == 0 {
		// An -only filter that matches nothing would make the gate a
		// silent no-op; fail loudly instead.
		return fmt.Errorf("benchjson: no ceiling entries selected (ceilings %s, only %q)", path, only)
	}
	return nil
}
