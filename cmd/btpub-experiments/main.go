// btpub-experiments regenerates every table and figure of the paper from
// an end-to-end simulated campaign and writes the paper-vs-measured
// comparison to EXPERIMENTS.md (and stdout). With -sweep it fans a grid of
// scenarios (style × seed) out over the sharded campaign engine under one
// shared worker budget, the way the follow-up studies re-ran the
// measurement across portals and months.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"btpub/internal/campaign"
	"btpub/internal/population"
	"btpub/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-experiments: ")
	scale := flag.Float64("scale", 0.05, "world scale (1.0 = full pb10)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	md := flag.Float64("mean-downloads", 350, "mean downloader arrivals per torrent")
	shards := flag.Int("shards", runtime.NumCPU(), "parallel world shards per campaign")
	workers := flag.Int("workers", 2, "announce workers per crawler vantage")
	sweep := flag.String("sweep", "", "comma-separated styles to sweep (e.g. pb10,pb09,mn08); empty = single pb10 run")
	seeds := flag.String("seeds", "", "comma-separated seeds for the sweep grid (default: -seed)")
	budget := flag.Int("budget", runtime.NumCPU(), "shared worker budget across all sweep campaigns")
	scenarios := flag.String("scenarios", "", "adversarial publisher profiles (comma-separated: alias,churn,blitz,purge; or all)")
	out := flag.String("out", "EXPERIMENTS.md", "output file (empty = stdout only)")
	flag.Parse()

	adv, err := population.ParseScenarios(*scenarios)
	if err != nil {
		log.Fatal(err)
	}

	if *sweep != "" {
		runSweep(*sweep, *seeds, *scale, *seed, *md, *shards, *workers, *budget, adv, *out)
		return
	}

	log.Printf("running pb10-style campaign: scale=%.3f seed=%d meanDownloads=%.0f shards=%d workers=%d scenarios=%v",
		*scale, *seed, *md, *shards, *workers, adv)
	res, err := campaign.Run(campaign.Spec{
		Scale: *scale, Seed: *seed, MeanDownloads: *md,
		Shards: *shards, Workers: *workers, Scenarios: adv,
	})
	if err != nil {
		log.Fatal(err)
	}
	logRun(res)
	writeReport(res, *out)
}

func logRun(res *campaign.Result) {
	st := res.Stats()
	log.Printf("%s done in %v: %d torrents, %d tracker queries, %d observations (%d dropped at merge), %d distinct IPs",
		res.Dataset.Name, res.Elapsed, st.TorrentsSeen, st.TrackerQueries,
		res.Dataset.NumObservations(), res.Dataset.DroppedObservations, res.Dataset.DistinctIPs())
}

func writeReport(res *campaign.Result, out string) {
	rep, err := report.Run(res)
	if err != nil {
		log.Fatal(err)
	}
	body := rep.Render()
	fmt.Println(body)
	if out != "" {
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}
}

// runSweep executes the style × seed grid concurrently and reports the
// full experiment suite for the first pb10 run of the grid.
func runSweep(sweep, seedList string, scale float64, seed uint64, md float64, shards, workers, budget int, adv population.Scenario, out string) {
	seedVals := []uint64{seed}
	if seedList != "" {
		seedVals = nil
		for _, f := range strings.Split(seedList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				log.Fatalf("bad seed %q: %v", f, err)
			}
			seedVals = append(seedVals, v)
		}
	}
	var specs []campaign.Spec
	for _, f := range strings.Split(sweep, ",") {
		style, err := campaign.ParseStyle(strings.TrimSpace(f))
		if err != nil {
			log.Fatal(err)
		}
		for _, sv := range seedVals {
			name := fmt.Sprintf("%s-seed%d", style, sv)
			if adv != 0 {
				name += "-" + adv.String()
			}
			specs = append(specs, campaign.Spec{
				Scale: scale, Seed: sv, MeanDownloads: md, Style: style,
				Shards: shards, Workers: workers, Scenarios: adv,
				DatasetName: name,
			})
		}
	}
	log.Printf("sweeping %d campaigns (scale=%.3f, %d shards each, budget %d)",
		len(specs), scale, shards, budget)
	results := campaign.RunMany(specs, budget)

	var primary *campaign.Result
	fmt.Printf("| dataset | torrents | with IP | observations | dropped | distinct IPs | queries | wall time |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, sr := range results {
		if sr.Err != nil {
			log.Fatalf("%s seed %d: %v", sr.Spec.Style, sr.Spec.Seed, sr.Err)
		}
		res := sr.Result
		st := res.Stats()
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %d | %v |\n",
			res.Dataset.Name, len(res.Dataset.Torrents), res.Dataset.TorrentsWithIP(),
			res.Dataset.NumObservations(), res.Dataset.DroppedObservations,
			res.Dataset.DistinctIPs(), st.TrackerQueries, res.Elapsed)
		if primary == nil && sr.Spec.Style == campaign.PB10 {
			primary = res
		}
	}
	if primary == nil {
		primary = results[0].Result
	}
	writeReport(primary, out)
}
