// btpub-experiments regenerates every table and figure of the paper from
// an end-to-end simulated campaign and writes the paper-vs-measured
// comparison to EXPERIMENTS.md (and stdout).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"btpub/internal/campaign"
	"btpub/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.05, "world scale (1.0 = full pb10)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	md := flag.Float64("mean-downloads", 350, "mean downloader arrivals per torrent")
	out := flag.String("out", "EXPERIMENTS.md", "output file (empty = stdout only)")
	flag.Parse()

	log.Printf("running pb10-style campaign: scale=%.3f seed=%d meanDownloads=%.0f", *scale, *seed, *md)
	res, err := campaign.Run(campaign.Spec{Scale: *scale, Seed: *seed, MeanDownloads: *md})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Crawler.Stats()
	log.Printf("campaign done in %v: %d torrents, %d tracker queries, %d observations, %d distinct IPs",
		res.Elapsed, st.TorrentsSeen, st.TrackerQueries,
		len(res.Dataset.Observations), res.Dataset.DistinctIPs())

	rep, err := report.Run(res)
	if err != nil {
		log.Fatal(err)
	}
	body := rep.Render()
	fmt.Println(body)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}
