// btpub-ecosystem serves the synthetic BitTorrent world over real sockets:
// the portal (RSS, pages, .torrent files) and tracker over HTTP, and the
// peer gateway over TCP, with virtual time advancing at a configurable
// speedup. A crawler (btpub-crawl network mode or examples/livecrawl) can
// then measure it across the wire.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"btpub/internal/ecosystem"
	"btpub/internal/geoip"
	"btpub/internal/population"
	"btpub/internal/portal"
	"btpub/internal/simclock"
	"btpub/internal/tracker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btpub-ecosystem: ")
	scale := flag.Float64("scale", 0.01, "world scale (1.0 = full pb10)")
	seed := flag.Uint64("seed", 1, "scenario seed")
	md := flag.Float64("mean-downloads", 250, "mean downloader arrivals per torrent")
	httpAddr := flag.String("http", "127.0.0.1:8810", "portal+tracker HTTP address")
	gwAddr := flag.String("gateway", "127.0.0.1:8811", "peer gateway TCP address")
	speedup := flag.Float64("speedup", 1440, "virtual seconds per wall second (1440 = a day per minute)")
	flag.Parse()

	db, err := geoip.DefaultDB()
	if err != nil {
		log.Fatal(err)
	}
	params := population.DefaultParams(*scale)
	params.Seed = *seed
	params.MeanDownloads = *md
	world, err := population.Generate(params, db)
	if err != nil {
		log.Fatal(err)
	}
	clock := simclock.NewSim(world.Start)
	eco, err := ecosystem.New(ecosystem.Config{
		World: world, DB: db, Clock: clock,
		TrackerURL: "http://" + *httpAddr + "/announce",
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	trk, err := tracker.New(eco, clock.Now)
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	ph := &portal.Handler{P: eco.Portal, BaseURL: "http://" + *httpAddr}
	th := &tracker.Handler{T: trk}
	mux.Handle("/rss", ph)
	mux.Handle("/torrent/", ph)
	mux.Handle("/page/", ph)
	mux.Handle("/user/", ph)
	mux.Handle("/announce", th)
	mux.Handle("/scrape", th)

	gw, err := net.Listen("tcp", *gwAddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := eco.ServeGateway(gw); err != nil {
			log.Printf("gateway: %v", err)
		}
	}()

	stop := eco.Pump(*speedup, 0)
	defer stop()

	fmt.Printf("world: %d torrents, %d publishers (scale %.3f)\n",
		len(world.Torrents), len(world.Publishers), *scale)
	fmt.Printf("portal+tracker: http://%s  (RSS at /rss, announce at /announce)\n", *httpAddr)
	fmt.Printf("peer gateway:   tcp://%s   (preamble: \"PEER <ip>\\n\")\n", *gwAddr)
	fmt.Printf("virtual time:   %.0fx real time, campaign start %s\n", *speedup, world.Start)
	log.Fatal(http.ListenAndServe(*httpAddr, mux))
}
