// btpub-vet runs the repo's custom analyzer suite (internal/lint): the
// invariants behind byte-identical sharded campaigns, lake crash-safety
// via the vfs.FS seam, and the /api/v1 error envelope, machine-checked.
//
// Standalone (the mode make lint and CI use):
//
//	btpub-vet ./...                 # allowlist ci/lint-allow.txt applied
//	btpub-vet -noallow ./...        # full debt report, allowlist ignored
//	btpub-vet -allow other.txt ./internal/lake/...
//
// Exit status is 0 only when every finding is allowlisted and every
// allowlist entry still suppresses something; a stale entry is itself a
// failure, so grandfathered debt cannot linger invisibly.
//
// As a vet tool (per-package, driven by the go command):
//
//	go vet -vettool=$(go env GOPATH)/bin/btpub-vet ./...
//
// In this mode the go command invokes the binary once per package with
// a JSON config file; findings print in the usual file:line:col form.
// The allowlist is not consulted (pass -allow with an absolute path to
// apply one); staleness needs the whole-tree view and is standalone-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"btpub/internal/lint"
)

func main() {
	// The go command probes vet tools with -V=full before first use
	// (caching results keyed on the reported version) and with -flags to
	// learn which tool flags it may forward from its own command line.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("btpub-vet version 1\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println(`[{"Name":"allow","Bool":false,"Usage":"allowlist file"},{"Name":"noallow","Bool":true,"Usage":"ignore the allowlist"}]`)
		return
	}

	allow := flag.String("allow", "", "allowlist file (default: the module's ci/lint-allow.txt in standalone mode)")
	noallow := flag.Bool("noallow", false, "ignore the allowlist and report every finding (nightly debt report)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: btpub-vet [-allow file | -noallow] [package pattern ...]\n\nAnalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], *allow))
	}
	os.Exit(standalone(flag.Args(), *allow, *noallow))
}

func standalone(patterns []string, allow string, noallow bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	switch {
	case noallow:
		allow = ""
	case allow == "":
		allow = lint.DefaultAllowFile(".")
	}
	res, err := lint.Run("", patterns, allow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btpub-vet: %v\n", err)
		return 2
	}
	for _, f := range res.Findings {
		fmt.Println(f.String())
	}
	for _, e := range res.Stale {
		fmt.Printf("%s:%d: stale allowlist entry %q: no %s finding left in %s — delete the line\n",
			res.Allow.File, e.Line, e.Path+":"+e.Analyzer, e.Analyzer, e.Path)
	}
	if !res.Ok() {
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON the go command hands a -vettool
// (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package as directed by the go command. The
// export-data "facts" file the protocol requires is written empty: the
// suite has no cross-package facts.
func vetUnit(cfgFile, allowFile string) int {
	buf, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btpub-vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(buf, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "btpub-vet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("btpub-vet has no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "btpub-vet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := lint.CheckUnit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "btpub-vet: %v\n", err)
		return 2
	}
	findings := lint.Check(pkg, lint.All)
	if allowFile != "" {
		al, err := lint.ParseAllowlist(allowFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btpub-vet: %v\n", err)
			return 2
		}
		findings = filterBySuffix(al, findings)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos.Offset < findings[j].Pos.Offset })
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// filterBySuffix applies an allowlist in vet-tool mode, where file
// paths are absolute and the module root is not known: an entry covers
// a finding when the module-relative entry path is a suffix of the
// absolute finding path.
func filterBySuffix(al *lint.Allowlist, findings []lint.Finding) []lint.Finding {
	var kept []lint.Finding
	for _, f := range findings {
		name := strings.ReplaceAll(f.Pos.Filename, "\\", "/")
		ok := false
		for _, e := range al.Entries {
			if e.Analyzer == f.Analyzer && strings.HasSuffix(name, "/"+e.Path) {
				ok = true
				break
			}
		}
		if !ok {
			kept = append(kept, f)
		}
	}
	return kept
}
