package btpub

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/query"
)

// queryBenchQuery is the grouped aggregate both executors run: a 2%
// time window of the 1M-observation store, bucketed at 30 minutes with
// three aggregates. On the lake path zone maps prune all but 1–2
// segments before they are opened.
func queryBenchQuery(start time.Time, totalSeconds int) query.Query {
	window := time.Duration(totalSeconds) * time.Second * 2 / 100
	return query.Query{
		Filter: query.Filter{
			MinTime: start.Add(time.Duration(totalSeconds)*time.Second - window),
		},
		GroupBy: query.GroupBy{Key: query.ByTimeBucket, Bucket: query.Duration(30 * time.Minute)},
		Aggs:    []string{query.AggObservations, query.AggDistinctIPs, query.AggSeeders},
	}
}

// queryBenchDataset is the 1M-observation fixture shared by both query
// benchmarks (2000 torrents × 500 observations, ~6k distinct IPs).
func queryBenchDataset() *dataset.Dataset {
	return lakeBenchDataset(2000, 500)
}

// BenchmarkQueryLake measures the lake executor end to end on a
// 1M-observation lake: plan compilation, zone-map pruning, segment
// decode, streamed aggregation. Setup (ingest) is untimed.
func BenchmarkQueryLake(b *testing.B) {
	ds := queryBenchDataset()
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	if err := lk.ImportDataset(ds); err != nil {
		b.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		b.Fatal(err)
	}
	q := queryBenchQuery(ds.Start, ds.NumObservations())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Execute(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}

// BenchmarkQueryMemory runs the identical query through the in-memory
// executor over the same 1M observations — the baseline the lake
// executor's pushdown is measured against.
func BenchmarkQueryMemory(b *testing.B) {
	ds := queryBenchDataset()
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewMemory(ds, db)
	if err != nil {
		b.Fatal(err)
	}
	q := queryBenchQuery(ds.Start, ds.NumObservations())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Execute(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}
