package btpub

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"btpub/internal/dataset"
	"btpub/internal/geoip"
	"btpub/internal/lake"
	"btpub/internal/query"
)

// queryBenchQuery is the grouped aggregate both executors run: a 2%
// time window of the 1M-observation store, bucketed at 30 minutes with
// three aggregates. On the lake path zone maps prune all but 1–2
// segments before they are opened.
func queryBenchQuery(start time.Time, totalSeconds int) query.Query {
	window := time.Duration(totalSeconds) * time.Second * 2 / 100
	return query.Query{
		Filter: query.Filter{
			MinTime: start.Add(time.Duration(totalSeconds)*time.Second - window),
		},
		GroupBy: query.GroupBy{Key: query.ByTimeBucket, Bucket: query.Duration(30 * time.Minute)},
		Aggs:    []string{query.AggObservations, query.AggDistinctIPs, query.AggSeeders},
	}
}

// queryBenchDataset is the 1M-observation fixture shared by both query
// benchmarks (2000 torrents × 500 observations, ~6k distinct IPs).
func queryBenchDataset() *dataset.Dataset {
	return lakeBenchDataset(2000, 500)
}

// BenchmarkQueryLake measures the lake executor end to end on a
// 1M-observation lake: plan compilation, zone-map pruning, segment
// decode, streamed aggregation. Setup (ingest) is untimed.
func BenchmarkQueryLake(b *testing.B) {
	ds := queryBenchDataset()
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	if err := lk.ImportDataset(ds); err != nil {
		b.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		b.Fatal(err)
	}
	q := queryBenchQuery(ds.Start, ds.NumObservations())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Execute(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}

// queryBenchLake ingests the shared 1M-observation fixture into a
// fresh lake and returns an executor over it (setup is untimed).
func queryBenchLake(b *testing.B) (*dataset.Dataset, *query.Lake) {
	b.Helper()
	ds := queryBenchDataset()
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lk.Close() })
	if err := lk.ImportDataset(ds); err != nil {
		b.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		b.Fatal(err)
	}
	return ds, ex
}

// queryBenchFullQuery is the full-lake grouped aggregate the
// serial-vs-parallel pair runs: no time filter, so every segment is
// opened and the scan cost dominates — the shape where partitioning
// segments across workers pays.
func queryBenchFullQuery() query.Query {
	return query.Query{
		GroupBy: query.GroupBy{Key: query.ByTorrent},
		Aggs:    []string{query.AggObservations, query.AggDistinctIPs, query.AggSeeders},
		OrderBy: query.OrderBy{Field: query.AggObservations, Desc: true},
		Limit:   100,
	}
}

// BenchmarkQueryLakeSerial runs the full-lake grouped aggregate with
// one scan worker — the baseline BenchmarkQueryLakeParallel is read
// against.
func BenchmarkQueryLakeSerial(b *testing.B) {
	_, ex := queryBenchLake(b)
	benchQuery(b, ex.WithWorkers(1), queryBenchFullQuery())
}

// BenchmarkQueryLakeParallel runs the identical full-lake grouped
// aggregate with GOMAXPROCS scan workers (per-segment partitioning, one
// collector per worker, deterministic merge). Results are byte-identical
// to the serial run — TestExecutorEquivalence enforces that — so the
// ns/op ratio between this pair is pure scan-parallelism speedup.
func BenchmarkQueryLakeParallel(b *testing.B) {
	_, ex := queryBenchLake(b)
	benchQuery(b, ex, queryBenchFullQuery())
}

// BenchmarkQueryPointLookup measures a single-IP lookup against a
// 1M-observation lake whose segments hold mostly disjoint address sets:
// the planner's microindex postings pass prunes every segment but the
// one holding the address, so an op is one postings consult (cached
// after the first op) plus one segment scan.
func BenchmarkQueryPointLookup(b *testing.B) {
	t0 := time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	const total = 1_000_000
	const target = "198.51.100.7"
	for i := 0; i < total; i++ {
		ip := fmt.Sprintf("10.%d.%d.%d", (i>>16)&255, (i>>8)&255, i&255)
		if i == 600_000 {
			ip = target
		}
		err := lk.Append(dataset.Observation{
			TorrentID: i % 1000, IP: ip,
			At: t0.Add(time.Duration(i) * time.Second), Seeder: i%64 == 0,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := lk.Flush(); err != nil {
		b.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewLake(lk, db)
	if err != nil {
		b.Fatal(err)
	}
	benchQuery(b, ex, query.Query{
		Filter:  query.Filter{IPs: []string{target}},
		GroupBy: query.GroupBy{Key: query.ByTorrent},
		Aggs:    []string{query.AggObservations},
	})
}

// benchQuery is the timed loop shared by the query benchmarks. One
// untimed warm-up run populates the lake's per-file caches (microindex
// postings, torrent metadata), so the measured ops — and the alloc
// ceilings on them — reflect steady state rather than first-touch
// decode cost.
func benchQuery(b *testing.B, ex *query.Lake, q query.Query) {
	b.Helper()
	ctx := context.Background()
	if _, err := ex.Execute(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Execute(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}

// BenchmarkQueryMemory runs the identical query through the in-memory
// executor over the same 1M observations — the baseline the lake
// executor's pushdown is measured against.
func BenchmarkQueryMemory(b *testing.B) {
	ds := queryBenchDataset()
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := query.NewMemory(ds, db)
	if err != nil {
		b.Fatal(err)
	}
	q := queryBenchQuery(ds.Start, ds.NumObservations())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Execute(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Total == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}
