package btpub

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"btpub/internal/dataset"
	"btpub/internal/lake"
)

// lakeBenchDataset builds a crawl-shaped dataset: torrents × obsPerTorrent
// observations over ~6k distinct addresses with forward-marching
// timestamps — the same shape as the dataset codec benchmarks.
func lakeBenchDataset(torrents, obsPerTorrent int) *dataset.Dataset {
	t0 := time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)
	d := &dataset.Dataset{Name: "bench", Start: t0, End: t0.AddDate(0, 1, 0)}
	for i := 0; i < torrents; i++ {
		d.AddTorrent(&dataset.TorrentRecord{TorrentID: i, InfoHash: fmt.Sprintf("%040x", i), Published: t0})
		for j := 0; j < obsPerTorrent; j++ {
			k := (i*131 + j*17) % 6000
			d.AddObservation(dataset.Observation{
				TorrentID: i,
				IP:        fmt.Sprintf("10.%d.%d.%d", k/62500, k/250%250, k%250),
				At:        t0.Add(time.Duration(i*obsPerTorrent+j) * time.Second),
				Seeder:    j == 0,
			})
		}
	}
	return d
}

// BenchmarkLakeIngest measures end-to-end ingest throughput: one op
// imports a 50k-observation dataset into a fresh lake (segment encode,
// fsync, manifest commit included) and closes it.
func BenchmarkLakeIngest(b *testing.B) {
	ds := lakeBenchDataset(100, 500)
	root := b.TempDir()
	b.SetBytes(int64(ds.NumObservations()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk, err := lake.Open(filepath.Join(root, fmt.Sprintf("lake-%d", i)), lake.Options{FlushRows: 1 << 14})
		if err != nil {
			b.Fatal(err)
		}
		if err := lk.ImportDataset(ds); err != nil {
			b.Fatal(err)
		}
		if err := lk.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLakeScanCompressed measures full-scan decode throughput over
// a 1M-observation lake of v2 compressed segments: one op scans every
// row of every segment. The lake's total on-disk footprint (segments +
// microindexes + journal) is reported as the disk-bytes metric, so
// BENCH_lake_<date>.json records the compression trajectory alongside
// the scan cost.
func BenchmarkLakeScanCompressed(b *testing.B) {
	ds := lakeBenchDataset(200, 5_000) // 1M observations
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{FlushRows: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	if err := lk.ImportDataset(ds); err != nil {
		b.Fatal(err)
	}
	rows := int64(ds.NumObservations())
	b.SetBytes(rows)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(0)
		err := lk.Scan(ctx, lake.Predicate{}, func(batch *lake.Batch) error {
			n += int64(batch.Len())
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scan saw %d rows, want %d", n, rows)
		}
	}
	b.ReportMetric(float64(lk.Stats().TotalBytes), "disk-bytes")
}

// BenchmarkLakeScan measures predicate-scan latency over a committed
// multi-segment lake: one op scans a time+torrent pushdown window (zone
// maps prune most segments) and counts the matches.
func BenchmarkLakeScan(b *testing.B) {
	ds := lakeBenchDataset(100, 500)
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{FlushRows: 1 << 12})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	if err := lk.ImportDataset(ds); err != nil {
		b.Fatal(err)
	}
	t0 := ds.Start
	pred := lake.Predicate{
		MinTime:    t0.Add(45_000 * time.Second),
		MaxTime:    t0.Add(48_000 * time.Second),
		TorrentIDs: []int{90, 91, 92, 93, 94, 95},
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := lk.Scan(ctx, pred, func(batch *lake.Batch) error {
			n += batch.Len()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("scan matched nothing")
		}
	}
}
