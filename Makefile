# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml).

# The bench targets pipe go test into cmd/benchjson; without pipefail a
# failing test run whose output still contains the bench lines would exit
# 0 and CI would go green on a broken build.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# The E1–E15 experiment suite (bench_test.go) plus the campaign engine
# and observation-lake benchmarks.
ANALYSIS_BENCH = BenchmarkTable1Datasets|BenchmarkFigure1Skewness|BenchmarkTable2ISP|BenchmarkTable3OVHComcast|BenchmarkSection33CrossAnalysis|BenchmarkFigure2ContentTypes|BenchmarkFigure3Popularity|BenchmarkFigure4aSeedingTime|BenchmarkFigure4bParallel|BenchmarkFigure4cSession|BenchmarkSection51Business|BenchmarkTable4Longitudinal|BenchmarkTable5Income|BenchmarkSection6OVH|BenchmarkAppendixAEstimator
CAMPAIGN_BENCH = BenchmarkCampaignSerial|BenchmarkCampaignParallel|BenchmarkCampaignAdversarial
LAKE_BENCH = BenchmarkLakeIngest|BenchmarkLakeScan|BenchmarkLakeScanCompressed
QUERY_BENCH = BenchmarkQueryLake|BenchmarkQueryMemory|BenchmarkQueryPointLookup
SERVE_BENCH = BenchmarkSnapshotRefreshFull|BenchmarkSnapshotRefreshIncremental

BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: test test-faults bench bench-campaign bench-lake bench-query bench-serve bench-smoke fmt vet lint lint-debt

test:
	go build ./... && go test ./...

# The full static gate, same as the CI lint job: formatting, the
# standard vet suite, then the repo's own analyzers (internal/lint via
# cmd/btpub-vet) with the checked-in allowlist applied. btpub-vet exits
# non-zero on any unsuppressed finding AND on any stale allowlist entry,
# so grandfathered debt cannot outlive the code it excused.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/btpub-vet ./...

# The nightly debt report: every finding, allowlist ignored. Always
# exits 0 — it measures the debt, the allowlist gate above polices it.
lint-debt:
	go run ./cmd/btpub-vet -noallow ./... || true

# Exhaustive kill-point torture: replay the lake workload with a crash
# (clean and torn-write) injected at EVERY filesystem operation, plus the
# EIO/ENOSPC injection sweep, under the race detector. The plain test run
# samples kill points; this enumerates them (BTPUB_FAULT_KILLPOINTS=all),
# same as nightly CI.
test-faults:
	BTPUB_FAULT_KILLPOINTS=all go test -race -run 'TestKillPointTorture|TestInjectedIOErrors' -v ./internal/lake

# Run the E1–E15 suite with -benchmem and record the perf trajectory as
# BENCH_<date>.json (cmd/benchjson parses the text output).
bench:
	go test -run '^$$' -bench '$(ANALYSIS_BENCH)' -benchmem -timeout 60m . \
		| go run ./cmd/benchjson -o BENCH_$(BENCH_DATE).json

# The campaign engine benchmarks, with their allocation ceiling enforced
# — the same gate CI runs.
bench-campaign:
	go test -run '^$$' -bench '$(CAMPAIGN_BENCH)' -benchtime=2x -benchmem -timeout 60m . \
		| go run ./cmd/benchjson -o BENCH_campaign_$(BENCH_DATE).json -ceilings ci/bench-ceilings.txt -only '^BenchmarkCampaign'

# Lake ingest throughput + scan latency, with their allocation ceilings
# enforced, recorded as BENCH_lake_<date>.json.
bench-lake:
	go test -run '^$$' -bench '$(LAKE_BENCH)' -benchtime=20x -benchmem -timeout 20m . \
		| go run ./cmd/benchjson -o BENCH_lake_$(BENCH_DATE).json -ceilings ci/bench-ceilings.txt -only '^BenchmarkLake'

# The query-engine benchmarks over a 1M-observation store, ceilings
# enforced: the 2% time-window grouped aggregate through the lake
# executor (zone-map pushdown) and the in-memory executor, the
# full-lake grouped aggregate serial vs parallel, and the
# microindex-pruned IP point lookup.
bench-query:
	go test -run '^$$' -bench '$(QUERY_BENCH)' -benchtime=20x -benchmem -timeout 20m . \
		| go run ./cmd/benchjson -o BENCH_query_$(BENCH_DATE).json -ceilings ci/bench-ceilings.txt -only '^BenchmarkQuery'

# The serving-tier snapshot refresh benchmarks over a 1M-observation
# lake: a cold full rebuild vs folding one freshly flushed segment into
# a warm snapshot. The incremental bench self-enforces the >=10x
# speedup floor and its alloc ceiling is checked like the others.
bench-serve:
	go test -run '^$$' -bench '$(SERVE_BENCH)' -benchtime=10x -benchmem -timeout 20m . \
		| go run ./cmd/benchjson -o BENCH_serve_$(BENCH_DATE).json -ceilings ci/bench-ceilings.txt -only '^BenchmarkSnapshot'

# One cheap 1x pass of the campaign + lake + query + serve benches with
# every alloc ceiling enforced, for CI.
bench-smoke:
	go test -run '^$$' -bench '$(CAMPAIGN_BENCH)|$(LAKE_BENCH)|$(QUERY_BENCH)|$(SERVE_BENCH)' -benchtime=1x -benchmem -timeout 25m . \
		| go run ./cmd/benchjson -ceilings ci/bench-ceilings.txt

fmt:
	gofmt -l -w .

vet:
	go vet ./...
