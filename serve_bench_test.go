package btpub

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"btpub/internal/dataset"
	"btpub/internal/delta"
	"btpub/internal/geoip"
	"btpub/internal/lake"
)

// serveBenchLake builds the serving-tier benchmark fixture: a lake of
// ~1M observations (5k torrents × 200 obs, ~150k distinct downloader
// addresses, 250 publishers) — the scale where full snapshot rebuilds
// stop being free.
func serveBenchLake(b *testing.B) (*lake.Lake, *geoip.DB) {
	b.Helper()
	const (
		torrents = 5_000
		perT     = 200
		ips      = 150_000
	)
	t0 := time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)
	ds := &dataset.Dataset{Name: "serve-bench", Start: t0, End: t0.AddDate(0, 2, 0)}
	for i := 0; i < torrents; i++ {
		ds.AddTorrent(&dataset.TorrentRecord{
			TorrentID: i, InfoHash: fmt.Sprintf("%040x", i),
			Title: fmt.Sprintf("Content.%d", i), Category: "Video > Movies",
			Username:    fmt.Sprintf("publisher%03d", i%250),
			PublisherIP: fmt.Sprintf("11.0.%d.%d", i%40, i%200),
			Published:   t0.Add(time.Duration(i) * time.Minute),
		})
		for j := 0; j < perT; j++ {
			k := (i*131 + j*7919) % ips
			ds.AddObservation(dataset.Observation{
				TorrentID: i,
				IP:        fmt.Sprintf("20.%d.%d.%d", k>>16, k>>8&255, k&255),
				At:        t0.Add(time.Duration(i)*time.Minute + time.Duration(j)*30*time.Second),
				Seeder:    j%50 == 0,
			})
		}
	}
	lk, err := lake.Open(filepath.Join(b.TempDir(), "lake"), lake.Options{FlushRows: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lk.Close() })
	if err := lk.ImportDataset(dataset.Merge("serve-bench", ds)); err != nil {
		b.Fatal(err)
	}
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	return lk, db
}

// appendServeDelta lands one small flush — 20 new torrents and 1k
// observations, the size of one refresh interval's worth of live crawl.
func appendServeDelta(b *testing.B, lk *lake.Lake, round int) {
	b.Helper()
	t0 := time.Date(2010, 6, 6, 0, 0, 0, 0, time.UTC).Add(time.Duration(round) * time.Hour)
	base := lk.NextTorrentID()
	recs := make([]*dataset.TorrentRecord, 20)
	for i := range recs {
		recs[i] = &dataset.TorrentRecord{
			TorrentID: base + i, InfoHash: fmt.Sprintf("%040x", base+i),
			Title: "Live", Category: "Video > Movies",
			Username:    fmt.Sprintf("publisher%03d", (base+i)%250),
			PublisherIP: fmt.Sprintf("11.0.%d.%d", (base+i)%40, (base+i)%200),
			Published:   t0.Add(time.Duration(i) * time.Minute),
		}
	}
	if err := lk.AddTorrents(recs); err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 1000; j++ {
		k := (round*1000 + j*7919) % 150_000
		err := lk.Append(dataset.Observation{
			TorrentID: base + j%20,
			IP:        fmt.Sprintf("20.%d.%d.%d", k>>16, k>>8&255, k&255),
			At:        t0.Add(time.Duration(j) * time.Second),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := lk.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSnapshotRefreshFull measures the from-scratch path: one op is
// a cold maintainer's first Refresh over the 1M-observation lake — read
// every segment, sort every column, count every aggregate.
func BenchmarkSnapshotRefreshFull(b *testing.B) {
	lk, db := serveBenchLake(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := delta.NewMaintainer(lk, db, 0)
		snap, err := m.Refresh(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if snap.Mode != delta.ModeFull {
			b.Fatalf("mode = %s", snap.Mode)
		}
	}
}

// BenchmarkSnapshotRefreshIncremental measures the steady-state serving
// path: one op folds one freshly flushed segment (20 records, 1k rows)
// into a warm snapshot lineage. The per-op appends run off the clock.
// After the measured loop it times one full rebuild at the same final
// version and enforces the acceptance floor: incremental must be >= 10x
// faster than full on this lake.
func BenchmarkSnapshotRefreshIncremental(b *testing.B) {
	lk, db := serveBenchLake(b)
	ctx := context.Background()
	m := delta.NewMaintainer(lk, db, 0)
	if _, err := m.Refresh(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		appendServeDelta(b, lk, i)
		b.StartTimer()
		snap, err := m.Refresh(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if snap.Mode != delta.ModeDelta {
			b.Fatalf("op %d: mode = %s (%s)", i, snap.Mode, snap.Reason)
		}
	}
	b.StopTimer()
	incPerOp := b.Elapsed() / time.Duration(b.N)

	fullStart := time.Now()
	fullSnap, err := delta.NewMaintainer(lk, db, 0).Refresh(ctx)
	if err != nil {
		b.Fatal(err)
	}
	fullDur := time.Since(fullStart)
	if fullSnap.Version != m.Snapshot().Version {
		b.Fatalf("full rebuild at v%d, incremental at v%d", fullSnap.Version, m.Snapshot().Version)
	}
	ratio := float64(fullDur) / float64(incPerOp)
	b.ReportMetric(ratio, "full/incr")
	if ratio < 10 {
		b.Fatalf("incremental refresh only %.1fx faster than full (incremental %v/op, full %v) — acceptance floor is 10x",
			ratio, incPerOp, fullDur)
	}
}
