// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §4, experiments E1-E15). One shared campaign is crawled once; each bench
// then measures the cost of regenerating its artifact from the dataset, so
// `go test -bench=. -benchmem` doubles as the experiment runner.
package btpub

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"btpub/internal/analysis"
	"btpub/internal/bencode"
	"net/netip"

	"btpub/internal/campaign"
	"btpub/internal/geoip"
	"btpub/internal/metainfo"
	"btpub/internal/population"
	"btpub/internal/rng"
	"btpub/internal/sessions"
	"btpub/internal/swarm"
	"btpub/internal/tracker"
	"btpub/internal/webmon"
)

var (
	benchOnce sync.Once
	benchRes  *campaign.Result
	benchAn   *analysis.Analysis
	benchMon  *webmon.Directory
	benchErr  error
)

func benchWorld(b *testing.B) (*campaign.Result, *analysis.Analysis, *webmon.Directory) {
	benchOnce.Do(func() {
		benchRes, benchErr = campaign.Run(campaign.Spec{Scale: 0.02, MeanDownloads: 250, Seed: 5})
		if benchErr != nil {
			return
		}
		benchAn, benchErr = analysis.New(benchRes.Dataset, benchRes.DB, 0)
		if benchErr != nil {
			return
		}
		benchMon, benchErr = webmon.NewDirectory(benchRes.World, 1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRes, benchAn, benchMon
}

// BenchmarkTable1Datasets — E1: dataset description row.
func BenchmarkTable1Datasets(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := a.Summary()
		if sum.DistinctIPs == 0 {
			b.Fatal("empty summary")
		}
	}
}

// BenchmarkFigure1Skewness — E2: contribution curve.
func BenchmarkFigure1Skewness(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := a.Skewness()
		if sk.TopShare3Pct <= 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkTable2ISP — E3: publishers per ISP.
func BenchmarkTable2ISP(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := a.ISPTable(10); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable3OVHComcast — E4: feeder contrast.
func BenchmarkTable3OVHComcast(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := a.ContrastISPs(geoip.OVH, geoip.Comcast)
		if len(rows) != 2 {
			b.Fatal("bad contrast")
		}
	}
}

// BenchmarkSection33CrossAnalysis — E5: username↔IP cross-analysis.
func BenchmarkSection33CrossAnalysis(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca := a.Facts.Cross(0)
		if ca.TopUsernames == 0 {
			b.Fatal("no usernames")
		}
	}
}

// BenchmarkFigure2ContentTypes — E6.
func BenchmarkFigure2ContentTypes(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if types := a.ContentTypes(); len(types) == 0 {
			b.Fatal("no types")
		}
	}
}

// BenchmarkFigure3Popularity — E7.
func BenchmarkFigure3Popularity(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop := a.Popularity()
		if pop["Top"].N == 0 {
			b.Fatal("no popularity data")
		}
	}
}

// BenchmarkFigure4aSeedingTime — E8 (4h estimator).
func BenchmarkFigure4aSeedingTime(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := a.Seeding(0)
		if sb.AvgSeedTimeHours["Fake"].N == 0 {
			b.Fatal("no seeding data")
		}
	}
}

// BenchmarkFigure4bParallel — E9 (2h estimator ablation).
func BenchmarkFigure4bParallel(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := a.Seeding(2 * time.Hour)
		if sb.AvgParallel["Fake"].N == 0 {
			b.Fatal("no parallel data")
		}
	}
}

// BenchmarkFigure4cSession — E10 (6h estimator ablation).
func BenchmarkFigure4cSession(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb := a.Seeding(6 * time.Hour)
		if sb.SessionHours["Top"].N == 0 {
			b.Fatal("no session data")
		}
	}
}

// BenchmarkSection51Business — E11.
func BenchmarkSection51Business(b *testing.B) {
	_, a, mon := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, sums, err := a.Business(mon); err != nil || len(sums) == 0 {
			b.Fatalf("business: %v", err)
		}
	}
}

// BenchmarkTable4Longitudinal — E12.
func BenchmarkTable4Longitudinal(b *testing.B) {
	_, a, mon := benchWorld(b)
	profiles, _, err := a.Business(mon)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.LongitudinalView(profiles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Income — E13.
func BenchmarkTable5Income(b *testing.B) {
	_, a, mon := benchWorld(b)
	profiles, _, err := a.Business(mon)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.IncomeView(profiles, mon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection6OVH — E14.
func BenchmarkSection6OVH(b *testing.B) {
	_, a, _ := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hi := a.HostingIncomeFor(geoip.OVH)
		_ = hi
	}
}

// BenchmarkAppendixAEstimator — E15: the session-detection model.
func BenchmarkAppendixAEstimator(b *testing.B) {
	est := sessions.Estimator{Gap: 4 * time.Hour}
	start := time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC)
	sightings := make([]time.Time, 0, 200)
	for i := 0; i < 200; i++ {
		sightings = append(sightings, start.Add(time.Duration(i*17)*time.Minute))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sessions.QueriesForConfidence(50, 165, 0.99); err != nil {
			b.Fatal(err)
		}
		if ss := est.Stitch(sightings); len(ss) == 0 {
			b.Fatal("no sessions")
		}
	}
}

// ---------------------------------------------------------------------
// Campaign engine: serial baseline vs sharded parallel run
// ---------------------------------------------------------------------

func benchCampaign(b *testing.B, shards, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Spec{
			Scale: 0.1, MeanDownloads: 200, Seed: 11,
			Shards: shards, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Torrents) == 0 || res.Dataset.NumObservations() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCampaignSerial is the single-goroutine baseline: one shard, one
// announce worker — the engine the repo had before sharding.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1, 1) }

// BenchmarkCampaignParallel shards the same campaign across every core.
// The merged dataset is byte-identical to the serial baseline's (the
// campaign determinism test enforces this), so the speedup is free.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, runtime.NumCPU(), 2) }

// BenchmarkCampaignAdversarial runs the sharded campaign with every
// adversarial publisher profile on (aliasing, IP churn, fake blitz,
// account purge) — the worst-case world for the moderation, username and
// identification paths. Its allocs/op ceiling in ci/bench-ceilings.txt
// keeps the scenario engine from regressing the crawl hot paths.
func BenchmarkCampaignAdversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Spec{
			Scale: 0.1, MeanDownloads: 200, Seed: 11,
			Shards: runtime.NumCPU(), Workers: 2,
			Scenarios: population.AllScenarios,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Torrents) == 0 || res.Dataset.NumObservations() == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------

// BenchmarkBencodeTorrentRoundTrip measures .torrent encode+parse.
func BenchmarkBencodeTorrentRoundTrip(b *testing.B) {
	bt := metainfo.Builder{
		Name: "Some.Movie.2010.avi", Length: 700 << 20,
		Announce: "http://t/announce", Seed: 1,
	}
	tor, err := bt.Build()
	if err != nil {
		b.Fatal(err)
	}
	data, err := tor.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metainfo.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBencodeDecodeDict measures raw bencode decoding.
func BenchmarkBencodeDecodeDict(b *testing.B) {
	data, err := bencode.Marshal(map[string]interface{}(bencode.Dict{
		"interval": int64(900), "complete": int64(12), "incomplete": int64(34),
		"peers": string(make([]byte, 6*50)),
	}))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bencode.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackerAnnounce measures one announce through the full tracker
// path (sampling + compact encoding + response parse).
func BenchmarkTrackerAnnounce(b *testing.B) {
	res, _, _ := benchWorld(b)
	entry := res.Eco.Portal.Recent(1)[0]
	trk, err := tracker.New(res.Eco, res.Eco.Clock().Now)
	if err != nil {
		b.Fatal(err)
	}
	req := &tracker.AnnounceRequest{InfoHash: entry.InfoHash, NumWant: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := trk.Announce(req)
		if err != nil {
			b.Fatal(err)
		}
		body, err := tracker.EncodeAnnounceResponse(resp, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tracker.ParseAnnounceResponse(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwarmGeneration measures building a full swarm schedule.
func BenchmarkSwarmGeneration(b *testing.B) {
	pool := benchPool{}
	p := swarm.Params{
		Birth: time.Date(2010, 4, 6, 0, 0, 0, 0, time.UTC), Lambda0: 48,
		TauDays: 5, Horizon: 35 * 24 * time.Hour, ContentSizeBytes: 700 << 20,
		SeedProb: 0.5, MeanSeedHours: 6, AbortProb: 0.15,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := swarm.New(p, rng.New(uint64(i), "bench"), pool, nil)
		if err != nil {
			b.Fatal(err)
		}
		_ = sw.TotalArrivals()
	}
}

type benchPool struct{ n uint32 }

func (p benchPool) DrawConsumer(s *rng.Stream) (netip.Addr, bool) {
	return netip.AddrFrom4([4]byte{10, byte(s.IntN(250)), byte(s.IntN(250)), byte(1 + s.IntN(250))}), s.Bool(0.3)
}

// BenchmarkWorldGeneration measures generating a 1%-scale world.
func BenchmarkWorldGeneration(b *testing.B) {
	db, err := geoip.DefaultDB()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := population.Generate(population.DefaultParams(0.01), db); err != nil {
			b.Fatal(err)
		}
	}
}
